/**
 * @file
 * Integration tests of the full AutoCAT pipeline: PPO on the guessing
 * game, convergence, sequence extraction, and classification. Uses a
 * deliberately tiny configuration so the whole test stays fast.
 */

#include <gtest/gtest.h>

#include "core/autocat.hpp"

namespace autocat {
namespace {

/** Tiny 2-way FA LRU set, victim 0/E, attacker 0-2, cold start. */
ExplorationConfig
tinyConfig()
{
    ExplorationConfig cfg;
    cfg.env.cache.numSets = 1;
    cfg.env.cache.numWays = 2;
    cfg.env.cache.policy = ReplPolicy::Lru;
    cfg.env.cache.addressSpaceSize = 6;
    cfg.env.attackAddrS = 0;
    cfg.env.attackAddrE = 2;
    cfg.env.victimAddrS = 0;
    cfg.env.victimAddrE = 0;
    cfg.env.victimNoAccessEnable = true;
    cfg.env.windowSize = 10;
    cfg.env.randomInit = false;
    cfg.env.seed = 13;
    cfg.ppo.seed = 17;
    cfg.ppo.stepsPerEpoch = 1500;
    cfg.maxEpochs = 40;
    cfg.evalEpisodes = 60;
    return cfg;
}

TEST(Explore, TinyConfigConvergesAndClassifies)
{
    const ExplorationResult result = explore(tinyConfig());
    ASSERT_TRUE(result.converged)
        << "accuracy " << result.finalAccuracy;
    EXPECT_GE(result.finalAccuracy, 0.97);
    EXPECT_GT(result.envSteps, 0);
    EXPECT_FALSE(result.sequence.empty());
    EXPECT_FALSE(result.finalGuess.empty());
    // The extracted trajectory must include the victim trigger.
    EXPECT_GE(result.sequence.countKind(ActionKind::TriggerVictim), 1u);
    // Cold cache: trigger + probe + guess suffices; the step penalty
    // pushes toward short sequences.
    EXPECT_LE(result.sequence.size(), 8u);
    EXPECT_LE(result.finalEpisodeLength, 9.0);
}

TEST(Explore, ConvergesWithFourThreadedStreams)
{
    ExplorationConfig cfg = tinyConfig();
    cfg.numStreams = 4;
    cfg.threadedEnvs = true;
    const ExplorationResult result = explore(cfg);
    ASSERT_TRUE(result.converged)
        << "accuracy " << result.finalAccuracy;
    EXPECT_GE(result.finalAccuracy, 0.97);
    EXPECT_FALSE(result.sequence.empty());
}

TEST(Explore, UnknownScenarioIsRejected)
{
    ExplorationConfig cfg = tinyConfig();
    cfg.scenario = "definitely_not_registered";
    EXPECT_THROW(explore(cfg), std::out_of_range);
}

TEST(Explore, HierarchyScenariosRunUnderExplore)
{
    // Every hierarchy scenario must train end to end through the
    // standard pipeline (one epoch suffices — this is a smoke test of
    // construction + stepping + evaluation, not convergence).
    for (const char *scenario :
         {"l1l2_private", "l1l2_shared", "l2_exclusive", "three_level"}) {
        ExplorationConfig cfg = tinyConfig();
        cfg.scenario = scenario;
        cfg.ppo.stepsPerEpoch = 400;
        cfg.maxEpochs = 1;
        cfg.evalEpisodes = 10;
        const ExplorationResult result = explore(cfg);
        EXPECT_GT(result.envSteps, 0) << scenario;
        EXPECT_GE(result.finalAccuracy, 0.0) << scenario;
    }
}

TEST(Explore, VersionStringMentionsLibrary)
{
    EXPECT_NE(std::string(versionString()).find("autocat"),
              std::string::npos);
}

TEST(Explore, DetectorDecoratorIsInvoked)
{
    ExplorationConfig cfg = tinyConfig();
    cfg.maxEpochs = 1;  // just exercise the wiring
    bool decorated = false;
    explore(cfg, nullptr, [&](CacheGuessingGame &env) {
        decorated = true;
        EXPECT_EQ(env.numActions(), 6u);
    });
    EXPECT_TRUE(decorated);
}

TEST(Explore, HardwareTargetMemoryPlugsIn)
{
    ExplorationConfig cfg = tinyConfig();
    cfg.maxEpochs = 1;
    HardwareTargetPreset preset;
    preset.ways = 2;
    preset.policy = ReplPolicy::Lru;
    preset.attackAddrE = 2;
    preset.obsNoise = 0.0;
    preset.interference = 0.0;
    auto target = std::make_unique<SimulatedHardwareTarget>(preset, 3);
    const ExplorationResult r = explore(cfg, std::move(target));
    EXPECT_GT(r.envSteps, 0);
}

TEST(BenchMode, DefaultsWithoutEnvVars)
{
    // The test runner does not set AUTOCAT_FAST / AUTOCAT_FULL.
    EXPECT_EQ(benchMode(), BenchMode::Default);
    EXPECT_EQ(byMode(1, 2, 3), 2);
    EXPECT_STREQ(benchModeName(BenchMode::Fast), "fast");
}

} // namespace
} // namespace autocat
