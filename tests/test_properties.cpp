/**
 * @file
 * Cross-configuration property tests.
 *
 * Sweeps the guessing game, the oracle, and the covert channels over
 * a grid of cache geometries and policies, asserting structural
 * invariants rather than exact values:
 *
 *  - observations are well-formed one-hot/flag vectors of the
 *    advertised size, for every config and at every step;
 *  - episodes always terminate within the configured bounds and
 *    episode return never exceeds the maximum achievable reward;
 *  - the textbook prime+probe attack is a distinguishing sequence on
 *    every conflict-observable geometry;
 *  - a correctly primed set always reveals the victim's set via a
 *    probe miss, for every deterministic policy;
 *  - StealthyStreamline's calibration patterns are pairwise distinct
 *    (the channel is decodable) for every supported geometry.
 */

#include <gtest/gtest.h>

#include <set>

#include "attacks/textbook.hpp"
#include "env/guessing_game.hpp"
#include "env/sequence_oracle.hpp"
#include "hw/covert_channel.hpp"

namespace autocat {
namespace {

struct GameGrid
{
    unsigned sets;
    unsigned ways;
    ReplPolicy policy;
    bool flush;
    bool noAccess;
};

class GameProperties : public ::testing::TestWithParam<GameGrid>
{
  protected:
    EnvConfig
    makeConfig() const
    {
        const GameGrid g = GetParam();
        EnvConfig cfg;
        cfg.cache.numSets = g.sets;
        cfg.cache.numWays = g.ways;
        cfg.cache.policy = g.policy;
        cfg.cache.addressSpaceSize = 4 * g.sets * g.ways + 4;
        cfg.attackAddrS = 0;
        cfg.attackAddrE = g.sets * g.ways + 1;
        cfg.victimAddrS = 0;
        cfg.victimAddrE = g.sets - 1 + (g.sets == 1 ? 1 : 0);
        cfg.flushEnable = g.flush;
        cfg.victimNoAccessEnable = g.noAccess;
        cfg.windowSize = 12;
        cfg.seed = 11;
        return cfg;
    }
};

TEST_P(GameProperties, ObservationsAreWellFormed)
{
    const EnvConfig cfg = makeConfig();
    CacheGuessingGame env(cfg);
    Rng rng(5);

    for (int episode = 0; episode < 6; ++episode) {
        std::vector<float> obs = env.reset();
        ASSERT_EQ(obs.size(), env.observationSize());
        bool done = false;
        while (!done) {
            const StepResult sr =
                env.step(rng.uniformInt(env.numActions()));
            ASSERT_EQ(sr.obs.size(), env.observationSize());
            // Every feature is a probability-like value in [0, 1].
            for (float v : sr.obs) {
                ASSERT_GE(v, 0.0f);
                ASSERT_LE(v, 1.0f);
            }
            done = sr.done;
        }
    }
}

TEST_P(GameProperties, EpisodesTerminateWithinBounds)
{
    const EnvConfig cfg = makeConfig();
    CacheGuessingGame env(cfg);
    Rng rng(6);

    for (int episode = 0; episode < 10; ++episode) {
        env.reset();
        unsigned steps = 0;
        bool done = false;
        double ep_return = 0.0;
        while (!done) {
            const StepResult sr =
                env.step(rng.uniformInt(env.numActions()));
            ++steps;
            ep_return += sr.reward;
            done = sr.done;
            ASSERT_LE(steps, cfg.resolvedLengthLimit());
        }
        // Return can never beat a perfect immediate guess.
        EXPECT_LE(ep_return, cfg.correctGuessReward);
    }
}

TEST_P(GameProperties, TriggerAlwaysPrecedesCorrectGuess)
{
    const EnvConfig cfg = makeConfig();
    CacheGuessingGame env(cfg);
    Rng rng(7);
    for (int episode = 0; episode < 20; ++episode) {
        env.reset();
        bool triggered = false;
        bool done = false;
        while (!done) {
            const std::size_t a = rng.uniformInt(env.numActions());
            const Action decoded = env.actionSpace().decode(a);
            const StepResult sr = env.step(a);
            if (decoded.kind == ActionKind::TriggerVictim)
                triggered = true;
            if (sr.info.guessCorrect)
                EXPECT_TRUE(triggered);
            done = sr.done;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GameProperties,
    ::testing::Values(
        GameGrid{1, 2, ReplPolicy::Lru, false, true},
        GameGrid{1, 4, ReplPolicy::Lru, true, true},
        GameGrid{1, 4, ReplPolicy::TreePlru, false, true},
        GameGrid{1, 4, ReplPolicy::Rrip, false, true},
        GameGrid{1, 4, ReplPolicy::Random, false, true},
        GameGrid{4, 1, ReplPolicy::Lru, false, false},
        GameGrid{4, 2, ReplPolicy::Lru, true, false},
        GameGrid{8, 1, ReplPolicy::Lru, false, false},
        GameGrid{2, 4, ReplPolicy::TreePlru, false, false}));

// ----------------------------------------------------------- oracle --

class PrimeProbeAcrossGeometries
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(PrimeProbeAcrossGeometries, TextbookPrimeProbeDistinguishes)
{
    const auto [sets, ways] = GetParam();
    EnvConfig cfg;
    cfg.cache.numSets = sets;
    cfg.cache.numWays = ways;
    cfg.cache.policy = ReplPolicy::Lru;
    const unsigned blocks = sets * ways;
    cfg.cache.addressSpaceSize = 4 * blocks;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = sets - 1;
    cfg.attackAddrS = blocks;
    cfg.attackAddrE = 2 * blocks - 1;
    cfg.windowSize = 4 * blocks + 8;
    cfg.randomInit = false;
    if (sets < 2)
        GTEST_SKIP() << "needs at least two victim addresses";

    DistinguishingOracle oracle(cfg);
    const AttackSequence seq = textbookPrimeProbe(cfg);
    EXPECT_TRUE(
        oracle.isDistinguishing(seq.toIndices(oracle.actionSpace())));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PrimeProbeAcrossGeometries,
    ::testing::Values(std::make_pair(2u, 1u), std::make_pair(4u, 1u),
                      std::make_pair(8u, 1u), std::make_pair(4u, 2u),
                      std::make_pair(2u, 4u)));

// ------------------------------------------------- deterministic PP --

class ProbeSignal : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(ProbeSignal, PrimedSetRevealsVictimSet)
{
    // For every deterministic policy: prime a DM cache, let the
    // victim touch set s, probe — exactly set s misses.
    EnvConfig cfg;
    cfg.cache.numSets = 4;
    cfg.cache.numWays = 1;
    cfg.cache.policy = GetParam();
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 4;
    cfg.attackAddrE = 7;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 3;
    cfg.windowSize = 24;
    cfg.randomInit = false;

    for (std::uint64_t secret = 0; secret < 4; ++secret) {
        CacheGuessingGame env(cfg);
        env.reset();
        env.forceSecret(secret);
        const auto &as = env.actionSpace();
        for (std::uint64_t a = 4; a <= 7; ++a)
            env.step(as.accessIndex(a));
        env.step(as.triggerIndex());
        std::set<std::uint64_t> missed;
        for (std::uint64_t a = 4; a <= 7; ++a) {
            if (env.step(as.accessIndex(a)).info.observedLatency ==
                LatMiss) {
                missed.insert(a - 4);
            }
        }
        EXPECT_EQ(missed, std::set<std::uint64_t>{secret});
    }
}

INSTANTIATE_TEST_SUITE_P(DeterministicPolicies, ProbeSignal,
                         ::testing::Values(ReplPolicy::Lru,
                                           ReplPolicy::TreePlru,
                                           ReplPolicy::Rrip));

// ---------------------------------------------------- covert channel --

class SsGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(SsGeometry, TransmissionIsLosslessWithoutNoise)
{
    const auto [ways, bits] = GetParam();
    CovertChannelConfig cfg;
    cfg.protocol = CovertProtocol::StealthyStreamline;
    cfg.ways = ways;
    cfg.bitsPerSymbol = bits;
    cfg.policy = ReplPolicy::Lru;
    cfg.seed = 3;
    CovertChannel channel(cfg);
    Rng rng(ways * 31 + bits);
    const BitString msg = randomBits(rng, 240);
    const CovertResult res = channel.transmit(msg);
    EXPECT_EQ(res.errorRate, 0.0)
        << ways << "-way, " << bits << " bits/symbol";
    EXPECT_EQ(res.victimMisses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SsGeometry,
    ::testing::Values(std::make_pair(4u, 2u), std::make_pair(8u, 2u),
                      std::make_pair(8u, 3u), std::make_pair(12u, 2u),
                      std::make_pair(12u, 3u), std::make_pair(16u, 2u)));

} // namespace
} // namespace autocat
