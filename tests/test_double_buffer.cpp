/**
 * @file
 * Determinism tests for double-buffered rollout collection: with a
 * fixed seed, PpoTrainer must produce bitwise-identical training
 * trajectories whether PpoConfig::doubleBuffered is off (serial
 * collect) or on (env stepping overlapped with policy inference on a
 * background worker), across even/odd stream splits and both VecEnv
 * adapters. Also exercises the VecEnv::stepRange sub-batch primitive
 * the pipeline is built on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "env/batch_env_pool.hpp"
#include "rl/ppo.hpp"
#include "rl/vec_env.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

/**
 * Variable-length probe-then-guess episodes (mirrors test_ppo's
 * ProbeEnv): streams finish episodes at different times, so the
 * pipelined collector's auto-reset path is exercised mid-epoch.
 */
class ProbeEnv : public Environment
{
  public:
    explicit ProbeEnv(std::uint64_t seed) : rng_(seed) {}

    std::size_t observationSize() const override { return 3; }
    std::size_t numActions() const override { return 3; }

    std::vector<float>
    reset() override
    {
        bit_ = rng_.uniformInt(2);
        probed_ = false;
        steps_ = 0;
        return obs();
    }

    StepResult
    step(std::size_t action) override
    {
        StepResult r;
        ++steps_;
        if (action == 0) {
            probed_ = true;
            r.reward = -0.01;
        } else {
            const bool correct = probed_ && action - 1 == bit_;
            r.reward = correct ? 1.0 : -1.0;
            r.info.guessMade = true;
            r.info.guessCorrect = correct;
            r.done = true;
        }
        if (steps_ >= 6 && !r.done) {
            r.done = true;
            r.reward = -1.0;
        }
        r.obs = obs();
        return r;
    }

  private:
    std::vector<float>
    obs() const
    {
        std::vector<float> o(3, 0.0f);
        o[0] = probed_ ? 1.0f : 0.0f;
        if (probed_)
            o[1 + bit_] = 1.0f;
        return o;
    }

    Rng rng_;
    std::size_t bit_ = 0;
    bool probed_ = false;
    int steps_ = 0;
};

template <typename Adapter>
std::unique_ptr<Adapter>
makeProbeVec(std::size_t n, std::uint64_t base_seed)
{
    std::vector<std::unique_ptr<Environment>> envs;
    for (std::size_t i = 0; i < n; ++i)
        envs.push_back(std::make_unique<ProbeEnv>(base_seed + i));
    return std::make_unique<Adapter>(std::move(envs));
}

/** Logits of both policies on a shared probe batch, compared bitwise. */
void
expectPoliciesBitwiseEqual(PpoTrainer &a, PpoTrainer &b)
{
    Matrix probe(4, 3);
    Rng rng(99);
    for (std::size_t i = 0; i < probe.size(); ++i)
        probe.data()[i] = static_cast<float>(rng.gaussian());
    AcOutput oa, ob;
    a.policy().forwardNoGrad(probe, oa);
    b.policy().forwardNoGrad(probe, ob);
    ASSERT_EQ(oa.logits.size(), ob.logits.size());
    EXPECT_EQ(0, std::memcmp(oa.logits.data(), ob.logits.data(),
                             oa.logits.size() * sizeof(float)));
    ASSERT_EQ(oa.values.size(), ob.values.size());
    EXPECT_EQ(0, std::memcmp(oa.values.data(), ob.values.data(),
                             oa.values.size() * sizeof(float)));
}

void
runDeterminismCheck(std::size_t streams)
{
    PpoConfig off_cfg;
    off_cfg.seed = 31;
    off_cfg.stepsPerEpoch = 600;
    off_cfg.minibatchSize = 200;
    PpoConfig on_cfg = off_cfg;
    on_cfg.doubleBuffered = true;

    auto off_vec = makeProbeVec<SyncVecEnv>(streams, 700);
    auto on_vec = makeProbeVec<SyncVecEnv>(streams, 700);
    PpoTrainer off_trainer(*off_vec, off_cfg);
    PpoTrainer on_trainer(*on_vec, on_cfg);

    for (int e = 0; e < 3; ++e) {
        const EpochStats a = off_trainer.runEpoch();
        const EpochStats b = on_trainer.runEpoch();
        EXPECT_DOUBLE_EQ(a.meanReturn, b.meanReturn) << "epoch " << e;
        EXPECT_DOUBLE_EQ(a.meanEpisodeLength, b.meanEpisodeLength);
        EXPECT_DOUBLE_EQ(a.policyLoss, b.policyLoss) << "epoch " << e;
        EXPECT_DOUBLE_EQ(a.valueLoss, b.valueLoss) << "epoch " << e;
        EXPECT_DOUBLE_EQ(a.entropy, b.entropy) << "epoch " << e;
    }
    EXPECT_EQ(off_trainer.totalEnvSteps(), on_trainer.totalEnvSteps());
    expectPoliciesBitwiseEqual(off_trainer, on_trainer);
}

TEST(DoubleBuffer, OffAndOnAreBitwiseIdenticalEvenSplit)
{
    runDeterminismCheck(4);
}

TEST(DoubleBuffer, OffAndOnAreBitwiseIdenticalOddSplit)
{
    runDeterminismCheck(5);
}

TEST(DoubleBuffer, SingleStreamFallsBackToSerial)
{
    // n == 1 cannot be split; the toggle must be a no-op, not a hang.
    PpoConfig cfg;
    cfg.seed = 33;
    cfg.stepsPerEpoch = 200;
    cfg.doubleBuffered = true;
    auto vec = makeProbeVec<SyncVecEnv>(1, 900);
    PpoTrainer trainer(*vec, cfg);
    const EpochStats stats = trainer.runEpoch();
    EXPECT_EQ(stats.epoch, 1);
    EXPECT_EQ(trainer.totalEnvSteps(), 200);
}

TEST(DoubleBuffer, ThreadedAdapterMatchesSyncSerial)
{
    // Pipelined collection over ThreadedVecEnv (its stepRange fans the
    // sub-batch out to the pool) still reproduces the serial rollouts.
    PpoConfig off_cfg;
    off_cfg.seed = 35;
    off_cfg.stepsPerEpoch = 400;
    PpoConfig on_cfg = off_cfg;
    on_cfg.doubleBuffered = true;

    auto sync_vec = makeProbeVec<SyncVecEnv>(4, 1100);
    auto threaded_vec = makeProbeVec<ThreadedVecEnv>(4, 1100);
    PpoTrainer serial_trainer(*sync_vec, off_cfg);
    PpoTrainer pipelined_trainer(*threaded_vec, on_cfg);

    for (int e = 0; e < 2; ++e) {
        const EpochStats a = serial_trainer.runEpoch();
        const EpochStats b = pipelined_trainer.runEpoch();
        EXPECT_DOUBLE_EQ(a.meanReturn, b.meanReturn);
        EXPECT_DOUBLE_EQ(a.policyLoss, b.policyLoss);
        EXPECT_DOUBLE_EQ(a.valueLoss, b.valueLoss);
    }
    expectPoliciesBitwiseEqual(serial_trainer, pipelined_trainer);
}

TEST(DoubleBuffer, ConvergesWithPipelineEnabled)
{
    PpoConfig cfg;
    cfg.seed = 37;
    cfg.stepsPerEpoch = 2000;
    cfg.doubleBuffered = true;
    auto vec = makeProbeVec<SyncVecEnv>(4, 1300);
    PpoTrainer trainer(*vec, cfg);
    const int epoch = trainer.trainUntil(0.99, 20, 200);
    EXPECT_GT(epoch, 0) << "pipelined probe env did not converge";
}

TEST(DoubleBuffer, BatchAdapterSerialMatchesSyncSerial)
{
    // The in-place batch collection path (collectBatchInPlace) must
    // reproduce the allocating serial path bitwise: same RNG sampling
    // order, same rollout contents, same weights after updates.
    PpoConfig cfg;
    cfg.seed = 41;
    cfg.stepsPerEpoch = 600;
    cfg.minibatchSize = 200;

    auto sync_vec = makeProbeVec<SyncVecEnv>(4, 1700);
    auto batch_vec = makeProbeVec<BatchVecEnv>(4, 1700);
    PpoTrainer sync_trainer(*sync_vec, cfg);
    PpoTrainer batch_trainer(*batch_vec, cfg);

    for (int e = 0; e < 3; ++e) {
        const EpochStats a = sync_trainer.runEpoch();
        const EpochStats b = batch_trainer.runEpoch();
        EXPECT_DOUBLE_EQ(a.meanReturn, b.meanReturn) << "epoch " << e;
        EXPECT_DOUBLE_EQ(a.meanEpisodeLength, b.meanEpisodeLength);
        EXPECT_DOUBLE_EQ(a.policyLoss, b.policyLoss) << "epoch " << e;
        EXPECT_DOUBLE_EQ(a.valueLoss, b.valueLoss) << "epoch " << e;
        EXPECT_DOUBLE_EQ(a.entropy, b.entropy) << "epoch " << e;
    }
    EXPECT_EQ(sync_trainer.totalEnvSteps(), batch_trainer.totalEnvSteps());
    expectPoliciesBitwiseEqual(sync_trainer, batch_trainer);
}

TEST(DoubleBuffer, BatchAdapterPipelinedMatchesSyncSerial)
{
    // doubleBuffered over a BatchVecEnv routes through its stepRange
    // (the pipeline wins the dispatch over the batch surface); the
    // composition must still be bitwise-identical to serial sync.
    PpoConfig off_cfg;
    off_cfg.seed = 43;
    off_cfg.stepsPerEpoch = 400;
    PpoConfig on_cfg = off_cfg;
    on_cfg.doubleBuffered = true;

    auto sync_vec = makeProbeVec<SyncVecEnv>(5, 1900);
    auto batch_vec = makeProbeVec<BatchVecEnv>(5, 1900);
    PpoTrainer serial_trainer(*sync_vec, off_cfg);
    PpoTrainer pipelined_trainer(*batch_vec, on_cfg);

    for (int e = 0; e < 2; ++e) {
        const EpochStats a = serial_trainer.runEpoch();
        const EpochStats b = pipelined_trainer.runEpoch();
        EXPECT_DOUBLE_EQ(a.meanReturn, b.meanReturn);
        EXPECT_DOUBLE_EQ(a.policyLoss, b.policyLoss);
        EXPECT_DOUBLE_EQ(a.valueLoss, b.valueLoss);
    }
    expectPoliciesBitwiseEqual(serial_trainer, pipelined_trainer);
}

TEST(VecEnvStepRange, SubBatchMatchesStepAllAndLeavesRestUntouched)
{
    auto full_vec = makeProbeVec<SyncVecEnv>(4, 1500);
    auto range_vec = makeProbeVec<SyncVecEnv>(4, 1500);
    full_vec->resetAll();
    range_vec->resetAll();

    const std::vector<std::size_t> actions{0, 1, 2, 0};
    const VecStepResult want = full_vec->stepAll(actions);

    VecStepResult out;
    out.obs.resize(4, range_vec->observationSize());
    out.rewards.assign(4, -123.0);
    out.dones.assign(4, 77);
    out.infos.assign(4, StepInfo{});
    range_vec->stepRange(1, 3, actions, out);

    for (std::size_t s = 1; s < 3; ++s) {
        EXPECT_DOUBLE_EQ(out.rewards[s], want.rewards[s]);
        EXPECT_EQ(out.dones[s], want.dones[s]);
        for (std::size_t c = 0; c < out.obs.cols(); ++c)
            EXPECT_EQ(out.obs(s, c), want.obs(s, c));
    }
    // Slots outside [1, 3) keep their sentinel values.
    EXPECT_DOUBLE_EQ(out.rewards[0], -123.0);
    EXPECT_DOUBLE_EQ(out.rewards[3], -123.0);
    EXPECT_EQ(out.dones[0], 77);
    EXPECT_EQ(out.dones[3], 77);

    // The remaining streams can be finished separately.
    range_vec->stepRange(0, 1, actions, out);
    range_vec->stepRange(3, 4, actions, out);
    EXPECT_DOUBLE_EQ(out.rewards[0], want.rewards[0]);
    EXPECT_DOUBLE_EQ(out.rewards[3], want.rewards[3]);
}

} // namespace
} // namespace autocat
