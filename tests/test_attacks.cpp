/**
 * @file
 * Tests for the attack library: sequence rendering, textbook
 * generators (validated through the distinguishing oracle and the
 * replayer), the category classifier, and the scripted agents.
 */

#include <gtest/gtest.h>

#include "attacks/agents.hpp"
#include "attacks/classifier.hpp"
#include "attacks/replay.hpp"
#include "attacks/sequence.hpp"
#include "attacks/textbook.hpp"
#include "env/sequence_oracle.hpp"

namespace autocat {
namespace {

EnvConfig
ppConfig()
{
    EnvConfig cfg;
    cfg.cache.numSets = 4;
    cfg.cache.numWays = 1;
    cfg.cache.policy = ReplPolicy::Lru;
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 4;
    cfg.attackAddrE = 7;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 3;
    cfg.windowSize = 24;
    cfg.randomInit = false;
    cfg.seed = 5;
    return cfg;
}

EnvConfig
frConfig()
{
    EnvConfig cfg;
    cfg.cache.numSets = 4;
    cfg.cache.numWays = 1;
    cfg.cache.policy = ReplPolicy::Lru;
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 3;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 3;
    cfg.flushEnable = true;
    cfg.windowSize = 24;
    cfg.randomInit = false;
    cfg.seed = 5;
    return cfg;
}

EnvConfig
erConfig()
{
    EnvConfig cfg;
    cfg.cache.numSets = 4;
    cfg.cache.numWays = 1;
    cfg.cache.policy = ReplPolicy::Lru;
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 7;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 3;
    cfg.windowSize = 24;
    cfg.randomInit = false;
    cfg.seed = 5;
    return cfg;
}

// ---------------------------------------------------------- sequence --

TEST(Sequence, ToStringUsesPaperNotation)
{
    AttackSequence seq({AttackStep::access(3), AttackStep::flush(1),
                        AttackStep::trigger(), AttackStep::access(0)});
    EXPECT_EQ(seq.toString(), "3 -> f1 -> v -> 0 -> g");
    EXPECT_EQ(seq.toString(false), "3 -> f1 -> v -> 0");
}

TEST(Sequence, CountKind)
{
    AttackSequence seq({AttackStep::access(3), AttackStep::flush(1),
                        AttackStep::trigger(), AttackStep::access(0)});
    EXPECT_EQ(seq.countKind(ActionKind::Access), 2u);
    EXPECT_EQ(seq.countKind(ActionKind::Flush), 1u);
    EXPECT_EQ(seq.countKind(ActionKind::TriggerVictim), 1u);
}

TEST(Sequence, IndicesRoundTrip)
{
    const EnvConfig cfg = frConfig();
    ActionSpace as(cfg);
    AttackSequence seq({AttackStep::flush(0), AttackStep::trigger(),
                        AttackStep::access(0)});
    const auto idx = seq.toIndices(as);
    const AttackSequence back = AttackSequence::fromIndices(as, idx);
    EXPECT_EQ(back.toString(), seq.toString());
}

TEST(Sequence, FromIndicesRejectsGuesses)
{
    const EnvConfig cfg = frConfig();
    ActionSpace as(cfg);
    EXPECT_THROW(
        AttackSequence::fromIndices(as, {as.guessIndex(0)}),
        std::invalid_argument);
}

// ---------------------------------------------- textbook generators --

TEST(Textbook, PrimeProbeDistinguishes)
{
    const EnvConfig cfg = ppConfig();
    DistinguishingOracle oracle(cfg);
    const AttackSequence seq = textbookPrimeProbe(cfg);
    EXPECT_TRUE(
        oracle.isDistinguishing(seq.toIndices(oracle.actionSpace())));
}

TEST(Textbook, FlushReloadDistinguishes)
{
    const EnvConfig cfg = frConfig();
    DistinguishingOracle oracle(cfg);
    const AttackSequence seq = textbookFlushReload(cfg);
    EXPECT_TRUE(
        oracle.isDistinguishing(seq.toIndices(oracle.actionSpace())));
}

TEST(Textbook, EvictReloadDistinguishes)
{
    const EnvConfig cfg = erConfig();
    DistinguishingOracle oracle(cfg);
    const AttackSequence seq = textbookEvictReload(cfg);
    EXPECT_TRUE(
        oracle.isDistinguishing(seq.toIndices(oracle.actionSpace())));
}

TEST(Textbook, LruSetBasedDistinguishesVictimActivity)
{
    // 0/E victim on a fully-associative LRU set.
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 4;
    cfg.cache.policy = ReplPolicy::Lru;
    cfg.cache.addressSpaceSize = 16;
    cfg.attackAddrS = 1;
    cfg.attackAddrE = 6;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    cfg.windowSize = 32;
    cfg.randomInit = false;
    DistinguishingOracle oracle(cfg);
    const AttackSequence seq = textbookLruSetBased(cfg);
    EXPECT_TRUE(
        oracle.isDistinguishing(seq.toIndices(oracle.actionSpace())));
}

TEST(Textbook, PrimeProbeReplaysAtFullAccuracy)
{
    const EnvConfig cfg = ppConfig();
    CacheGuessingGame env(cfg);
    SequenceReplayer replayer(env);
    ASSERT_TRUE(replayer.calibrate(textbookPrimeProbe(cfg), 4));
    EXPECT_DOUBLE_EQ(replayer.evaluateAccuracy(100), 1.0);
}

TEST(Textbook, FlushReloadReplaysAtFullAccuracy)
{
    const EnvConfig cfg = frConfig();
    CacheGuessingGame env(cfg);
    SequenceReplayer replayer(env);
    ASSERT_TRUE(replayer.calibrate(textbookFlushReload(cfg), 4));
    EXPECT_DOUBLE_EQ(replayer.evaluateAccuracy(100), 1.0);
}

TEST(Textbook, ReplayerSurvivesRandomInit)
{
    EnvConfig cfg = ppConfig();
    cfg.randomInit = true;
    CacheGuessingGame env(cfg);
    SequenceReplayer replayer(env);
    // Prime+probe re-establishes the state, so random init must not
    // break it.
    ASSERT_TRUE(replayer.calibrate(textbookPrimeProbe(cfg), 16));
    EXPECT_GT(replayer.evaluateAccuracy(200), 0.95);
}

TEST(Textbook, ReplayerRejectsUselessSequence)
{
    const EnvConfig cfg = ppConfig();
    CacheGuessingGame env(cfg);
    SequenceReplayer replayer(env);
    AttackSequence useless({AttackStep::access(4), AttackStep::trigger()});
    EXPECT_FALSE(replayer.calibrate(useless, 4));
}

// -------------------------------------------------------- classifier --

TEST(Classifier, LabelsTextbookGenerators)
{
    EXPECT_EQ(classifyAttack(textbookPrimeProbe(ppConfig()), ppConfig()),
              AttackCategory::PrimeProbe);
    EXPECT_EQ(classifyAttack(textbookFlushReload(frConfig()), frConfig()),
              AttackCategory::FlushReload);
    EXPECT_EQ(classifyAttack(textbookEvictReload(erConfig()), erConfig()),
              AttackCategory::EvictReload);
}

TEST(Classifier, LruLabelForShortStateAttack)
{
    // The paper's Table IV configs 5/7: shorter-than-prime sequences
    // leaking through replacement state.
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 4;
    cfg.attackAddrS = 4;
    cfg.attackAddrE = 7;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    AttackSequence seq({AttackStep::access(4), AttackStep::access(5),
                        AttackStep::trigger(), AttackStep::access(6)});
    EXPECT_EQ(classifyAttack(seq, cfg), AttackCategory::LruState);
}

TEST(Classifier, NoTriggerIsUnknown)
{
    AttackSequence seq({AttackStep::access(4)});
    EXPECT_EQ(classifyAttack(seq, ppConfig()), AttackCategory::Unknown);
}

TEST(Classifier, CombinationLabel)
{
    // Filled cache + shared reload + disjoint probe after the trigger
    // (Table IV config 4 found an ER+PP combination).
    const EnvConfig cfg = erConfig();
    AttackSequence seq;
    for (std::uint64_t a = 4; a <= 7; ++a)
        seq.push(AttackStep::access(a));
    seq.push(AttackStep::trigger());
    seq.push(AttackStep::access(1));  // shared reload
    seq.push(AttackStep::access(6));  // disjoint probe
    EXPECT_EQ(classifyAttack(seq, cfg),
              AttackCategory::EvictReloadAndPrimeProbe);
}

TEST(Classifier, LabelsAreStable)
{
    EXPECT_STREQ(categoryLabel(AttackCategory::PrimeProbe), "PP");
    EXPECT_STREQ(categoryLabel(AttackCategory::FlushReload), "FR");
    EXPECT_STREQ(categoryLabel(AttackCategory::EvictReload), "ER");
    EXPECT_STREQ(categoryLabel(AttackCategory::LruState), "LRU");
}

// ------------------------------------------------------------ agents --

TEST(Agents, TextbookPrimeProbeAgentIsAccurate)
{
    EnvConfig cfg = ppConfig();
    cfg.multiSecret = true;
    cfg.multiSecretEpisodeSteps = 160;
    cfg.windowSize = 16;
    cfg.randomInit = true;
    CacheGuessingGame env(cfg);
    TextbookPrimeProbeAgent agent(env);
    const AgentRunStats stats = runScriptedAgent(env, agent, 20);
    EXPECT_GT(stats.guessAccuracy, 0.97);
    EXPECT_GT(stats.guesses, 20u * 10u);
    // Prime(4) once, then rounds of trigger+probe(4)+guess: the bit
    // rate approaches 1/6 guesses per step.
    EXPECT_NEAR(stats.bitRate, 1.0 / 6.0, 0.04);
}

} // namespace
} // namespace autocat
