/**
 * @file
 * Tests for the detection schemes: miss-based, CC-Hunter
 * autocorrelation, the linear SVM, and the Cyclone cyclic-interference
 * detector with its synthetic training-set builder.
 */

#include <gtest/gtest.h>

#include <memory>

#include "detect/autocorr_detector.hpp"
#include "detect/benign_traces.hpp"
#include "detect/cyclone.hpp"
#include "detect/miss_detector.hpp"
#include "detect/svm.hpp"

namespace autocat {
namespace {

CacheEvent
demandEvent(Domain d, std::uint64_t addr, std::uint64_t set, bool hit,
            bool evicted = false, Domain evicted_owner = Domain::Attacker)
{
    CacheEvent ev;
    ev.op = CacheOp::DemandAccess;
    ev.domain = d;
    ev.addr = addr;
    ev.setIndex = set;
    ev.hit = hit;
    ev.evicted = evicted;
    ev.evictedOwner = evicted_owner;
    return ev;
}

// -------------------------------------------------------- miss-based --

TEST(MissDetector, CountsOnlyVictimDemandMisses)
{
    MissBasedDetector det(2);
    det.onEvent(demandEvent(Domain::Attacker, 0, 0, false));  // ignored
    det.onEvent(demandEvent(Domain::Victim, 0, 0, true));     // hit
    EXPECT_FALSE(det.flagged());
    det.onEvent(demandEvent(Domain::Victim, 0, 0, false));
    EXPECT_FALSE(det.flagged()) << "threshold is 2";
    det.onEvent(demandEvent(Domain::Victim, 1, 1, false));
    EXPECT_TRUE(det.flagged());
    det.onEpisodeReset();
    EXPECT_FALSE(det.flagged());
    EXPECT_EQ(det.victimMisses(), 0u);
}

TEST(MissDetector, IgnoresUncachedPlCacheAccesses)
{
    MissBasedDetector det(1);
    CacheEvent ev = demandEvent(Domain::Victim, 0, 0, false);
    ev.servedUncached = true;
    det.onEvent(ev);
    EXPECT_FALSE(det.flagged());
}

// ----------------------------------------------------- autocorrelation --

TEST(AutocorrDetector, FlagsPeriodicConflictTrain)
{
    AutocorrDetector det(20, 0.75, -1.0, 4);
    // Strictly alternating A->V / V->A conflicts (textbook channel).
    for (int i = 0; i < 40; ++i) {
        const bool attacker_evicts = i % 2 == 0;
        CacheEvent ev = demandEvent(
            attacker_evicts ? Domain::Attacker : Domain::Victim, 0, 0,
            false, true,
            attacker_evicts ? Domain::Victim : Domain::Attacker);
        det.onEvent(ev);
    }
    EXPECT_EQ(det.eventTrain().size(), 40u);
    EXPECT_GT(det.maxAutocorr(), 0.9);
    EXPECT_TRUE(det.flagged());
    EXPECT_LT(det.episodePenalty(), -0.1);
}

TEST(AutocorrDetector, IgnoresIntraDomainEvictions)
{
    AutocorrDetector det;
    det.onEvent(demandEvent(Domain::Attacker, 0, 0, false, true,
                            Domain::Attacker));
    EXPECT_TRUE(det.eventTrain().empty());
}

TEST(AutocorrDetector, ShortTrainNeverFlags)
{
    AutocorrDetector det(20, 0.75, -1.0, 8);
    for (int i = 0; i < 5; ++i) {
        det.onEvent(demandEvent(Domain::Attacker, 0, 0, false, true,
                                Domain::Victim));
    }
    EXPECT_FALSE(det.flagged());
    EXPECT_EQ(det.episodePenalty(), 0.0);
}

TEST(AutocorrDetector, AperiodicTrainBelowThreshold)
{
    AutocorrDetector det(20, 0.75, -1.0, 4);
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        const bool a = rng.bernoulli(0.5);
        det.onEvent(demandEvent(a ? Domain::Attacker : Domain::Victim, 0,
                                0, false, true,
                                a ? Domain::Victim : Domain::Attacker));
    }
    EXPECT_FALSE(det.flagged());
}

// --------------------------------------------------------------- SVM --

TEST(Svm, SeparatesLinearlySeparableData)
{
    Rng rng(3);
    SvmDataset data;
    for (int i = 0; i < 200; ++i) {
        const double x = rng.gaussian();
        const double y = rng.gaussian();
        data.add({x + 3.0, y}, +1);
        data.add({x - 3.0, y}, -1);
    }
    LinearSvm svm(1e-3, 30);
    svm.train(data, rng);
    EXPECT_GT(svm.accuracy(data), 0.98);
}

TEST(Svm, DecisionSignMatchesPrediction)
{
    Rng rng(4);
    SvmDataset data;
    for (int i = 0; i < 50; ++i) {
        data.add({1.0 + 0.01 * i}, +1);
        data.add({-1.0 - 0.01 * i}, -1);
    }
    LinearSvm svm;
    svm.train(data, rng);
    EXPECT_GT(svm.decision({2.0}), 0.0);
    EXPECT_LT(svm.decision({-2.0}), 0.0);
    EXPECT_EQ(svm.predict({2.0}), 1);
    EXPECT_EQ(svm.predict({-2.0}), -1);
}

TEST(Svm, HandlesConstantFeature)
{
    Rng rng(5);
    SvmDataset data;
    for (int i = 0; i < 40; ++i) {
        data.add({7.0, static_cast<double>(i % 2 ? 1 : -1)},
                 i % 2 ? 1 : -1);
    }
    LinearSvm svm;
    EXPECT_NO_THROW(svm.train(data, rng));
    EXPECT_GT(svm.accuracy(data), 0.95);
}

TEST(Svm, KFoldOnSeparableDataIsAccurate)
{
    Rng rng(6);
    SvmDataset data;
    for (int i = 0; i < 100; ++i) {
        data.add({rng.gaussian() + 4.0}, +1);
        data.add({rng.gaussian() - 4.0}, -1);
    }
    EXPECT_GT(kFoldAccuracy(data, 5, rng), 0.95);
}

TEST(Svm, EmptyTrainingThrows)
{
    Rng rng(7);
    LinearSvm svm;
    SvmDataset empty;
    EXPECT_THROW(svm.train(empty, rng), std::invalid_argument);
}

// ----------------------------------------------------------- cyclone --

TEST(CycloneFeatures, CountsEvictionCycles)
{
    CycloneFeatureExtractor ex(4, 100);
    // A evicts V's line, then V evicts A's line on set 2: one cycle.
    ex.onEvent(demandEvent(Domain::Attacker, 2, 2, false, true,
                           Domain::Victim));
    ex.onEvent(demandEvent(Domain::Victim, 2, 2, false, true,
                           Domain::Attacker));
    const auto features = ex.finishInterval();
    ASSERT_TRUE(features.has_value());
    EXPECT_EQ((*features)[2], 1.0);
    EXPECT_EQ((*features)[4], 1.0);  // total
    EXPECT_EQ((*features)[0], 0.0);
}

TEST(CycloneFeatures, SameDirectionEvictionsNeverCycle)
{
    CycloneFeatureExtractor ex(2, 100);
    for (int i = 0; i < 10; ++i) {
        ex.onEvent(demandEvent(Domain::Attacker, 0, 0, false, true,
                               Domain::Victim));
    }
    const auto features = ex.finishInterval();
    ASSERT_TRUE(features.has_value());
    EXPECT_EQ((*features)[2], 0.0);
}

TEST(CycloneFeatures, IntraDomainEvictionsIgnored)
{
    CycloneFeatureExtractor ex(2, 100);
    ex.onEvent(demandEvent(Domain::Attacker, 0, 0, false, true,
                           Domain::Attacker));
    ex.onEvent(demandEvent(Domain::Victim, 0, 0, false, true,
                           Domain::Victim));
    const auto features = ex.finishInterval();
    ASSERT_TRUE(features.has_value());
    EXPECT_EQ((*features)[2], 0.0);
}

TEST(CycloneFeatures, IntervalBoundaryEmitsFeatures)
{
    CycloneFeatureExtractor ex(2, 3);
    EXPECT_FALSE(ex.onEvent(demandEvent(Domain::Attacker, 0, 0, true))
                     .has_value());
    EXPECT_FALSE(ex.onEvent(demandEvent(Domain::Victim, 0, 0, true))
                     .has_value());
    EXPECT_TRUE(ex.onEvent(demandEvent(Domain::Attacker, 0, 0, true))
                    .has_value());
    // Counter restarts for the next interval.
    EXPECT_FALSE(ex.onEvent(demandEvent(Domain::Victim, 0, 0, true))
                     .has_value());
}

TEST(CycloneTraining, SvmSeparatesBenignFromPrimeProbe)
{
    CacheConfig cache;
    cache.numSets = 4;
    cache.numWays = 1;
    cache.policy = ReplPolicy::Lru;
    cache.addressSpaceSize = 128;

    BenignTraceConfig benign;
    benign.addrSpace = 64;
    benign.traceLength = 160;

    CycloneTrainingSetBuilder builder(cache, 16, benign);
    Rng rng(11);
    const SvmDataset data = builder.build(60, rng);
    ASSERT_GT(data.size(), 100u);

    // The paper reports 98.8% 5-fold accuracy for its Cyclone SVM.
    const double acc = kFoldAccuracy(data, 5, rng);
    EXPECT_GT(acc, 0.9);
}

TEST(CycloneDetector, FlagsPrimeProbeIntervals)
{
    CacheConfig cache;
    cache.numSets = 4;
    cache.numWays = 1;
    cache.policy = ReplPolicy::Lru;
    cache.addressSpaceSize = 128;
    BenignTraceConfig benign;
    CycloneTrainingSetBuilder builder(cache, 16, benign);
    Rng rng(12);
    auto svm = std::make_shared<LinearSvm>();
    svm->train(builder.build(60, rng), rng);

    CycloneDetector det(4, 16, svm, -1.0);
    // Feed a textbook prime+probe pattern.
    Cache c(cache);
    c.setEventListener([&](const CacheEvent &ev) { det.onEvent(ev); });
    for (int round = 0; round < 8; ++round) {
        for (std::uint64_t a = 0; a < 4; ++a)
            c.access(4 + a, Domain::Attacker);
        c.access(round % 4, Domain::Victim);
    }
    EXPECT_TRUE(det.flagged());
    EXPECT_GT(det.flaggedIntervals(), 0u);
    EXPECT_LT(det.consumeStepPenalty(), 0.0);
    EXPECT_EQ(det.consumeStepPenalty(), 0.0) << "penalty is consumed";
}

TEST(CycloneDetector, QuietOnBenignTraffic)
{
    CacheConfig cache;
    cache.numSets = 4;
    cache.numWays = 1;
    cache.policy = ReplPolicy::Lru;
    cache.addressSpaceSize = 128;
    BenignTraceConfig benign;
    CycloneTrainingSetBuilder builder(cache, 16, benign);
    Rng rng(13);
    auto svm = std::make_shared<LinearSvm>();
    svm->train(builder.build(60, rng), rng);

    CycloneDetector det(4, 16, svm, -1.0);
    Cache c(cache);
    c.setEventListener([&](const CacheEvent &ev) { det.onEvent(ev); });
    // Single-domain strided traffic: no cross-domain cycles at all.
    for (int i = 0; i < 128; ++i)
        c.access(i % 16, Domain::Attacker);
    EXPECT_FALSE(det.flagged());
}

} // namespace
} // namespace autocat
