/**
 * @file
 * Tests for the guessing-game environment: action-space layout,
 * observation encoding, reward semantics, episode modes (single and
 * multi secret, masked-latency reveal), PL-cache locking, detector
 * hooks, and the distinguishing-sequence oracle.
 */

#include <gtest/gtest.h>

#include <memory>

#include "detect/autocorr_detector.hpp"
#include "detect/miss_detector.hpp"
#include "env/guessing_game.hpp"
#include "env/sequence_oracle.hpp"

namespace autocat {
namespace {

/** 4-way FA LRU set, victim 0/E, attacker 0-4, deterministic init. */
EnvConfig
tableVConfig()
{
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 4;
    cfg.cache.policy = ReplPolicy::Lru;
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 4;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    cfg.windowSize = 16;
    cfg.randomInit = false;
    cfg.seed = 5;
    return cfg;
}

/** 4-set DM cache, disjoint ranges (prime+probe setting). */
EnvConfig
ppConfig()
{
    EnvConfig cfg;
    cfg.cache.numSets = 4;
    cfg.cache.numWays = 1;
    cfg.cache.policy = ReplPolicy::Lru;
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 4;
    cfg.attackAddrE = 7;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 3;
    cfg.windowSize = 24;
    cfg.randomInit = false;
    cfg.seed = 5;
    return cfg;
}

// ------------------------------------------------------ action space --

TEST(ActionSpaceLayout, SizesWithoutFlush)
{
    const EnvConfig cfg = tableVConfig();
    ActionSpace as(cfg);
    // 5 accesses + 1 trigger + 1 guess(addr 0) + 1 guess-E.
    EXPECT_EQ(as.size(), 8u);
    EXPECT_EQ(as.numPrimitives(), 6u);
}

TEST(ActionSpaceLayout, SizesWithFlush)
{
    EnvConfig cfg = tableVConfig();
    cfg.flushEnable = true;
    ActionSpace as(cfg);
    EXPECT_EQ(as.size(), 13u);
    EXPECT_EQ(as.numPrimitives(), 11u);
}

TEST(ActionSpaceLayout, EncodeDecodeBijection)
{
    for (bool flush : {false, true}) {
        for (bool noacc : {false, true}) {
            EnvConfig cfg = ppConfig();
            cfg.flushEnable = flush;
            cfg.victimNoAccessEnable = noacc;
            ActionSpace as(cfg);
            for (std::size_t i = 0; i < as.size(); ++i) {
                const Action a = as.decode(i);
                EXPECT_EQ(as.encode(a), i);
            }
        }
    }
}

TEST(ActionSpaceLayout, GuessDetection)
{
    const EnvConfig cfg = tableVConfig();
    ActionSpace as(cfg);
    for (std::size_t i = 0; i < as.size(); ++i) {
        const Action a = as.decode(i);
        EXPECT_EQ(as.isGuess(i), a.isGuess());
    }
}

TEST(ActionSpaceLayout, PaperNotationStrings)
{
    EnvConfig cfg = tableVConfig();
    cfg.flushEnable = true;
    ActionSpace as(cfg);
    EXPECT_EQ(as.toString(as.accessIndex(3)), "3");
    EXPECT_EQ(as.toString(as.flushIndex(2)), "f2");
    EXPECT_EQ(as.toString(as.triggerIndex()), "v");
    EXPECT_EQ(as.toString(as.guessIndex(0)), "g0");
    EXPECT_EQ(as.toString(as.guessNoAccessIndex()), "gE");
}

TEST(ActionSpaceLayout, RangeChecks)
{
    const EnvConfig cfg = ppConfig();
    ActionSpace as(cfg);
    EXPECT_THROW(as.accessIndex(3), std::out_of_range);   // below range
    EXPECT_THROW(as.accessIndex(8), std::out_of_range);   // above range
    EXPECT_THROW(as.flushIndex(4), std::logic_error);     // disabled
    EXPECT_THROW(as.guessNoAccessIndex(), std::logic_error);
}

// ------------------------------------------------------- observation --

TEST(Observation, SizeFormula)
{
    const EnvConfig cfg = tableVConfig();
    CacheGuessingGame env(cfg);
    const std::size_t slot = 3 + env.numActions() + 2;
    const std::size_t summary = 8 * 5;  // two 4-state blocks, 5 addrs
    EXPECT_EQ(env.observationSize(), 16 * slot + summary + 3);
    EXPECT_EQ(env.reset().size(), env.observationSize());
}

TEST(Observation, WindowDefaultsScaleWithBlocks)
{
    EnvConfig cfg = tableVConfig();
    cfg.windowSize = 0;
    EXPECT_EQ(cfg.resolvedWindowSize(), 6u * 4u);
    EXPECT_EQ(cfg.resolvedLengthLimit(), 24u);
}

TEST(Observation, LatencyAppearsInNewestSlot)
{
    const EnvConfig cfg = tableVConfig();
    CacheGuessingGame env(cfg);
    env.reset();
    const StepResult sr = env.step(env.actionSpace().accessIndex(1));
    // Cold cache: access misses.
    EXPECT_EQ(sr.info.observedLatency, LatMiss);
    const std::size_t slot = 3 + env.numActions() + 2;
    const float *newest = sr.obs.data() + (16 - 1) * slot;
    EXPECT_EQ(newest[LatMiss], 1.0f);
    EXPECT_EQ(newest[LatHit], 0.0f);
    // The action one-hot marks the access action.
    EXPECT_EQ(newest[3 + env.actionSpace().accessIndex(1)], 1.0f);
}

TEST(Observation, TriggeredFlagIsVisible)
{
    const EnvConfig cfg = tableVConfig();
    CacheGuessingGame env(cfg);
    std::vector<float> obs = env.reset();
    const std::size_t slot = 3 + env.numActions() + 2;
    const std::size_t trig_flag = 16 * slot + 8 * 5 + 1;
    EXPECT_EQ(obs[trig_flag], 0.0f);
    obs = env.step(env.actionSpace().triggerIndex()).obs;
    EXPECT_EQ(obs[trig_flag], 1.0f);
}

// ------------------------------------------------ episode semantics --

TEST(Episode, StepRewardAndGuessRewards)
{
    EnvConfig cfg = tableVConfig();
    CacheGuessingGame env(cfg);
    env.reset();
    env.forceSecret(std::uint64_t{0});

    StepResult sr = env.step(env.actionSpace().accessIndex(1));
    EXPECT_DOUBLE_EQ(sr.reward, cfg.stepReward);
    EXPECT_FALSE(sr.done);

    sr = env.step(env.actionSpace().triggerIndex());
    EXPECT_DOUBLE_EQ(sr.reward, cfg.stepReward);

    sr = env.step(env.actionSpace().guessIndex(0));
    EXPECT_DOUBLE_EQ(sr.reward, cfg.correctGuessReward);
    EXPECT_TRUE(sr.done);
    EXPECT_TRUE(sr.info.guessMade);
    EXPECT_TRUE(sr.info.guessCorrect);
}

TEST(Episode, WrongGuessReward)
{
    EnvConfig cfg = tableVConfig();
    CacheGuessingGame env(cfg);
    env.reset();
    env.forceSecret(std::nullopt);
    env.step(env.actionSpace().triggerIndex());
    const StepResult sr = env.step(env.actionSpace().guessIndex(0));
    EXPECT_DOUBLE_EQ(sr.reward, cfg.wrongGuessReward);
    EXPECT_FALSE(sr.info.guessCorrect);
    EXPECT_TRUE(sr.done);
}

TEST(Episode, GuessBeforeTriggerIsAlwaysWrong)
{
    EnvConfig cfg = tableVConfig();
    CacheGuessingGame env(cfg);
    env.reset();
    env.forceSecret(std::uint64_t{0});
    const StepResult sr = env.step(env.actionSpace().guessIndex(0));
    EXPECT_TRUE(sr.info.guessMade);
    EXPECT_FALSE(sr.info.guessCorrect) << "official-env semantics";
}

TEST(Episode, GuessBeforeTriggerAllowedWhenDisabled)
{
    EnvConfig cfg = tableVConfig();
    cfg.requireTriggerBeforeGuess = false;
    CacheGuessingGame env(cfg);
    env.reset();
    env.forceSecret(std::uint64_t{0});
    const StepResult sr = env.step(env.actionSpace().guessIndex(0));
    EXPECT_TRUE(sr.info.guessCorrect);
}

TEST(Episode, LengthViolation)
{
    EnvConfig cfg = tableVConfig();
    cfg.windowSize = 4;
    CacheGuessingGame env(cfg);
    env.reset();
    StepResult sr;
    for (int i = 0; i < 4; ++i)
        sr = env.step(env.actionSpace().accessIndex(0));
    EXPECT_TRUE(sr.done);
    EXPECT_TRUE(sr.info.lengthViolation);
    EXPECT_DOUBLE_EQ(sr.reward,
                     cfg.stepReward + cfg.lengthViolationReward);
}

TEST(Episode, StepAfterDoneThrows)
{
    EnvConfig cfg = tableVConfig();
    cfg.windowSize = 2;
    CacheGuessingGame env(cfg);
    env.reset();
    env.step(0);
    env.step(0);  // length violation ends the episode
    EXPECT_THROW(env.step(0), std::logic_error);
}

TEST(Episode, ForceSecretValidation)
{
    EnvConfig cfg = tableVConfig();
    CacheGuessingGame env(cfg);
    env.reset();
    EXPECT_THROW(env.forceSecret(std::uint64_t{3}), std::out_of_range);
    EXPECT_NO_THROW(env.forceSecret(std::nullopt));

    EnvConfig cfg2 = ppConfig();  // no-access disabled
    CacheGuessingGame env2(cfg2);
    env2.reset();
    EXPECT_THROW(env2.forceSecret(std::nullopt), std::logic_error);
}

TEST(Episode, SecretSpaceContents)
{
    CacheGuessingGame env(tableVConfig());
    const auto secrets = env.secretSpace();
    ASSERT_EQ(secrets.size(), 2u);
    EXPECT_EQ(secrets[0], std::optional<std::uint64_t>{0});
    EXPECT_FALSE(secrets[1].has_value());
}

TEST(Episode, SecretsAreSampledUniformly)
{
    CacheGuessingGame env(ppConfig());
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 2000; ++i) {
        env.reset();
        ++counts[*env.secret()];
    }
    for (int c : counts)
        EXPECT_NEAR(c, 500, 120);
}

TEST(Episode, PrimeProbeManualPlaythrough)
{
    // Execute the textbook prime+probe by hand and decode the secret.
    CacheGuessingGame env(ppConfig());
    env.reset();
    env.forceSecret(std::uint64_t{2});
    const auto &as = env.actionSpace();
    for (std::uint64_t a = 4; a <= 7; ++a)
        env.step(as.accessIndex(a));
    env.step(as.triggerIndex());
    long missed = -1;
    for (std::uint64_t a = 4; a <= 7; ++a) {
        const StepResult sr = env.step(as.accessIndex(a));
        if (sr.info.observedLatency == LatMiss)
            missed = static_cast<long>(a - 4);
    }
    EXPECT_EQ(missed, 2);
    const StepResult sr = env.step(as.guessIndex(2));
    EXPECT_TRUE(sr.info.guessCorrect);
}

// ------------------------------------------------------- multi secret --

TEST(MultiSecret, EpisodeRunsFixedLengthAndResamples)
{
    EnvConfig cfg = ppConfig();
    cfg.multiSecret = true;
    cfg.multiSecretEpisodeSteps = 30;
    cfg.windowSize = 16;
    CacheGuessingGame env(cfg);
    env.reset();
    const auto &as = env.actionSpace();

    int steps = 0;
    int guesses = 0;
    bool done = false;
    while (!done) {
        StepResult sr;
        if (steps % 3 == 0) {
            sr = env.step(as.triggerIndex());
        } else if (steps % 3 == 1) {
            sr = env.step(as.accessIndex(4));
        } else {
            sr = env.step(as.guessIndex(0));
            EXPECT_TRUE(sr.info.guessMade);
            ++guesses;
        }
        ++steps;
        done = sr.done;
    }
    EXPECT_EQ(steps, 30);
    EXPECT_EQ(guesses, 10);
}

TEST(MultiSecret, NoGuessPenaltyAtEpisodeEnd)
{
    EnvConfig cfg = ppConfig();
    cfg.multiSecret = true;
    cfg.multiSecretEpisodeSteps = 5;
    CacheGuessingGame env(cfg);
    env.reset();
    double total = 0.0;
    StepResult sr;
    for (int i = 0; i < 5; ++i) {
        sr = env.step(env.actionSpace().accessIndex(4));
        total += sr.reward;
    }
    EXPECT_TRUE(sr.done);
    EXPECT_NEAR(total, 5 * cfg.stepReward + cfg.noGuessReward, 1e-9);
}

// ------------------------------------------------------- reveal mode --

TEST(RevealMode, LatenciesMaskedUntilFirstGuess)
{
    EnvConfig cfg = tableVConfig();
    cfg.revealOnGuess = true;
    CacheGuessingGame env(cfg);
    env.reset();
    const auto &as = env.actionSpace();

    StepResult sr = env.step(as.accessIndex(1));
    EXPECT_EQ(sr.info.observedLatency, LatNa) << "masked in blind phase";

    sr = env.step(as.triggerIndex());
    sr = env.step(as.accessIndex(1));
    EXPECT_EQ(sr.info.observedLatency, LatNa);

    // First guess reveals instead of scoring.
    sr = env.step(as.guessIndex(0));
    EXPECT_FALSE(sr.info.guessMade);
    EXPECT_FALSE(sr.done);

    // The revealed history now contains real latencies: the newest
    // access slot (access of 1, which hit) is visible.
    const std::size_t slot = 3 + env.numActions() + 2;
    bool any_hit_visible = false;
    for (unsigned i = 0; i < 16; ++i)
        any_hit_visible |= sr.obs[i * slot + LatHit] == 1.0f;
    EXPECT_TRUE(any_hit_visible);

    // Second guess scores and ends the episode.
    env.forceSecret(std::uint64_t{0});
    sr = env.step(as.guessIndex(0));
    EXPECT_TRUE(sr.info.guessMade);
    EXPECT_TRUE(sr.done);
}

// ---------------------------------------------------------- PL cache --

TEST(PlCache, VictimLinesLockedAtEpisodeStart)
{
    EnvConfig cfg = tableVConfig();
    cfg.plCacheLockVictim = true;
    cfg.attackAddrS = 1;
    cfg.attackAddrE = 5;
    CacheGuessingGame env(cfg);
    env.reset();
    auto &mem = dynamic_cast<SingleLevelMemory &>(env.memory());
    EXPECT_TRUE(mem.cache().contains(0));
    EXPECT_TRUE(mem.cache().isLocked(0));

    // Attack accesses can never evict the locked victim line.
    const auto &as = env.actionSpace();
    for (std::uint64_t a = 1; a <= 5; ++a)
        env.step(as.accessIndex(a));
    EXPECT_TRUE(mem.cache().contains(0));
}

// --------------------------------------------------------- detectors --

TEST(Detectors, MissBasedTerminatesEpisode)
{
    EnvConfig cfg = ppConfig();
    cfg.detectionEnable = true;
    cfg.randomInit = false;
    CacheGuessingGame env(cfg);
    env.attachDetector(std::make_shared<MissBasedDetector>(),
                       DetectorMode::Terminate);
    env.reset();
    env.forceSecret(std::uint64_t{1});
    // Victim's first access misses on the cold cache -> detection.
    const StepResult sr = env.step(env.actionSpace().triggerIndex());
    EXPECT_TRUE(sr.done);
    EXPECT_TRUE(sr.info.detected);
    EXPECT_NEAR(sr.reward, cfg.stepReward + cfg.detectionReward, 1e-9);
}

TEST(Detectors, AttachResetsPerEpisodeState)
{
    // Campaign phases attach detectors mid-session — possibly after
    // reset(), when nothing delivers onEpisodeReset() until the next
    // episode. attachDetector must clear per-episode state itself, so
    // a detector carrying stale state never flags the current episode.
    EnvConfig cfg = ppConfig();
    cfg.detectionEnable = true;
    CacheGuessingGame env(cfg);
    env.reset();

    auto detector = std::make_shared<MissBasedDetector>();
    // Pre-flag the detector with a victim demand miss observed
    // elsewhere (e.g. a previous environment).
    CacheEvent miss;
    miss.op = CacheOp::DemandAccess;
    miss.domain = Domain::Victim;
    miss.hit = false;
    detector->onEvent(miss);
    ASSERT_TRUE(detector->flagged());

    env.attachDetector(detector, DetectorMode::Terminate);
    EXPECT_FALSE(detector->flagged());
    EXPECT_EQ(detector->victimMisses(), 0u);

    // The stale flag must not end the episode on the next step.
    const StepResult sr = env.step(env.actionSpace().accessIndex(4));
    EXPECT_FALSE(sr.info.detected);
}

TEST(Detectors, MissBasedSilentWhenVictimHits)
{
    EnvConfig cfg = ppConfig();
    cfg.detectionEnable = true;
    auto detector = std::make_shared<MissBasedDetector>();
    CacheGuessingGame env(cfg);
    env.attachDetector(detector, DetectorMode::Terminate);
    env.reset();
    env.forceSecret(std::uint64_t{1});
    // Pre-load the victim's line so its access hits; the pre-load
    // itself is warm-up traffic the detector must not count.
    env.memory().access(1, Domain::Victim);
    detector->onEpisodeReset();
    const StepResult sr = env.step(env.actionSpace().triggerIndex());
    EXPECT_FALSE(sr.done);
    EXPECT_FALSE(sr.info.detected);
    EXPECT_EQ(detector->victimMisses(), 0u);
}

TEST(Detectors, AutocorrPenaltyAppliedAtEpisodeEnd)
{
    EnvConfig cfg = ppConfig();
    cfg.multiSecret = true;
    cfg.multiSecretEpisodeSteps = 40;
    auto detector =
        std::make_shared<AutocorrDetector>(10, 0.75, -2.0, 4);
    CacheGuessingGame env(cfg);
    env.attachDetector(detector, DetectorMode::Penalize);
    env.reset();
    const auto &as = env.actionSpace();

    // Periodic prime/trigger pattern produces conflict misses.
    double total = 0.0;
    StepResult sr;
    for (int i = 0; i < 40; ++i) {
        const int phase = i % 5;
        if (phase == 4)
            sr = env.step(as.triggerIndex());
        else
            sr = env.step(as.accessIndex(4 + phase));
        total += sr.reward;
    }
    EXPECT_TRUE(sr.done);
    // The L2 penalty must have made the return substantially more
    // negative than the pure step cost.
    EXPECT_LT(total, 40 * cfg.stepReward + cfg.noGuessReward - 0.05);
    EXPECT_GT(detector->eventTrain().size(), 4u);
}

// ------------------------------------------------------------ oracle --

TEST(Oracle, TextbookPrimeProbeIsDistinguishing)
{
    DistinguishingOracle oracle(ppConfig());
    const auto &as = oracle.actionSpace();
    std::vector<std::size_t> seq;
    for (std::uint64_t a = 4; a <= 7; ++a)
        seq.push_back(as.accessIndex(a));
    seq.push_back(as.triggerIndex());
    for (std::uint64_t a = 4; a <= 7; ++a)
        seq.push_back(as.accessIndex(a));
    EXPECT_TRUE(oracle.isDistinguishing(seq));
}

TEST(Oracle, SequenceWithoutTriggerNeverDistinguishes)
{
    DistinguishingOracle oracle(ppConfig());
    const auto &as = oracle.actionSpace();
    std::vector<std::size_t> seq{as.accessIndex(4), as.accessIndex(5),
                                 as.accessIndex(4)};
    EXPECT_FALSE(oracle.isDistinguishing(seq));
}

TEST(Oracle, PrimeWithoutProbeDoesNotDistinguish)
{
    DistinguishingOracle oracle(ppConfig());
    const auto &as = oracle.actionSpace();
    std::vector<std::size_t> seq;
    for (std::uint64_t a = 4; a <= 7; ++a)
        seq.push_back(as.accessIndex(a));
    seq.push_back(as.triggerIndex());
    EXPECT_FALSE(oracle.isDistinguishing(seq));
}

TEST(Oracle, StepsPerTrialCountsSecrets)
{
    DistinguishingOracle oracle(ppConfig());
    const std::vector<std::size_t> seq{0, 1, 2};
    EXPECT_EQ(oracle.stepsPerTrial(seq), 3 * 4);
}

TEST(Oracle, RandomSearchFindsPrimeProbe)
{
    EnvConfig cfg = ppConfig();
    cfg.cache.numSets = 2;  // tiny space so the search is fast
    cfg.cache.addressSpaceSize = 8;
    cfg.attackAddrS = 2;
    cfg.attackAddrE = 3;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 1;
    DistinguishingOracle oracle(cfg);
    Rng rng(3);
    const SearchResult r = randomSearch(oracle, 6, 200000, rng);
    ASSERT_TRUE(r.found);
    EXPECT_TRUE(oracle.isDistinguishing(r.sequence));
}

} // namespace
} // namespace autocat
