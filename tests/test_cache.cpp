/**
 * @file
 * Unit tests for CacheSet, Cache, prefetchers, and the memory-system
 * adapters (single-level and two-level inclusive hierarchy).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/cache.hpp"
#include "cache/memory_system.hpp"
#include "cache/prefetcher.hpp"

namespace autocat {
namespace {

CacheConfig
faConfig(unsigned ways, ReplPolicy policy = ReplPolicy::Lru)
{
    CacheConfig cfg;
    cfg.numSets = 1;
    cfg.numWays = ways;
    cfg.policy = policy;
    cfg.addressSpaceSize = 4 * ways;
    cfg.seed = 3;
    return cfg;
}

CacheConfig
dmConfig(unsigned sets)
{
    CacheConfig cfg;
    cfg.numSets = sets;
    cfg.numWays = 1;
    cfg.policy = ReplPolicy::Lru;
    cfg.addressSpaceSize = 4 * sets;
    cfg.seed = 3;
    return cfg;
}

// ---------------------------------------------------------- CacheSet --

TEST(CacheSet, MissThenHit)
{
    CacheSet set(2, ReplPolicy::Lru, nullptr);
    EXPECT_FALSE(set.access(5, Domain::Attacker).hit);
    EXPECT_TRUE(set.access(5, Domain::Attacker).hit);
}

TEST(CacheSet, FillsInvalidWaysBeforeEvicting)
{
    CacheSet set(3, ReplPolicy::Lru, nullptr);
    EXPECT_FALSE(set.access(1, Domain::Attacker).evicted);
    EXPECT_FALSE(set.access(2, Domain::Attacker).evicted);
    EXPECT_FALSE(set.access(3, Domain::Attacker).evicted);
    const AccessResult r = set.access(4, Domain::Attacker);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedAddr, 1u);
}

TEST(CacheSet, EvictedOwnerIsLastToucher)
{
    CacheSet set(1, ReplPolicy::Lru, nullptr);
    set.access(1, Domain::Victim);
    const AccessResult r = set.access(2, Domain::Attacker);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedOwner, Domain::Victim);
}

TEST(CacheSet, HitTransfersOwnership)
{
    CacheSet set(1, ReplPolicy::Lru, nullptr);
    set.access(1, Domain::Victim);
    set.access(1, Domain::Attacker);  // hit by the attacker
    const AccessResult r = set.access(2, Domain::Victim);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedOwner, Domain::Attacker);
}

TEST(CacheSet, InvalidateRemovesLine)
{
    CacheSet set(2, ReplPolicy::Lru, nullptr);
    set.access(7, Domain::Attacker);
    EXPECT_TRUE(set.invalidate(7));
    EXPECT_FALSE(set.contains(7));
    EXPECT_FALSE(set.invalidate(7));  // already gone
}

TEST(CacheSet, LockPreventsEviction)
{
    CacheSet set(2, ReplPolicy::Lru, nullptr);
    ASSERT_TRUE(set.lockLine(0, Domain::Victim));
    set.access(1, Domain::Attacker);
    // Fill pressure: 0 must survive all of it.
    for (std::uint64_t a = 2; a < 10; ++a)
        set.access(a, Domain::Attacker);
    EXPECT_TRUE(set.contains(0));
    EXPECT_TRUE(set.isLocked(0));
}

TEST(CacheSet, AllLockedServesUncached)
{
    CacheSet set(2, ReplPolicy::Lru, nullptr);
    set.lockLine(0, Domain::Victim);
    set.lockLine(1, Domain::Victim);
    const AccessResult r = set.access(9, Domain::Attacker);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.servedUncached);
    EXPECT_FALSE(set.contains(9));
}

TEST(CacheSet, UnlockRestoresEvictability)
{
    CacheSet set(1, ReplPolicy::Lru, nullptr);
    set.lockLine(0, Domain::Victim);
    EXPECT_TRUE(set.unlockLine(0));
    const AccessResult r = set.access(1, Domain::Attacker);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedAddr, 0u);
}

TEST(CacheSet, LockedLineAccessStillUpdatesReplacementState)
{
    // The PL-cache leak (Section V-D): a hit on a locked line moves
    // the replacement metadata even though the line can't be evicted.
    CacheSet set(4, ReplPolicy::Lru, nullptr);
    set.lockLine(0, Domain::Victim);
    set.access(1, Domain::Attacker);
    set.access(2, Domain::Attacker);
    set.access(3, Domain::Attacker);
    // LRU order: 0 (locked, oldest), 1, 2, 3.
    set.access(0, Domain::Victim);  // hit on the locked line
    // Now 1 is the oldest unlocked line.
    const AccessResult r = set.access(4, Domain::Attacker);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedAddr, 1u);
}

TEST(CacheSet, ResetClearsEverything)
{
    CacheSet set(2, ReplPolicy::Lru, nullptr);
    set.lockLine(0, Domain::Victim);
    set.access(1, Domain::Attacker);
    set.reset();
    EXPECT_FALSE(set.contains(0));
    EXPECT_FALSE(set.contains(1));
    EXPECT_TRUE(set.residentAddrs().empty());
}

// ------------------------------------------------------------- Cache --

TEST(Cache, DirectMappedConflicts)
{
    Cache cache(dmConfig(4));
    cache.access(1, Domain::Attacker);
    EXPECT_TRUE(cache.contains(1));
    cache.access(5, Domain::Attacker);  // 5 % 4 == 1: conflict
    EXPECT_FALSE(cache.contains(1));
    EXPECT_TRUE(cache.contains(5));
    // Non-conflicting address is untouched.
    cache.access(2, Domain::Attacker);
    EXPECT_TRUE(cache.contains(5));
}

TEST(Cache, FlushInvalidates)
{
    Cache cache(faConfig(4));
    cache.access(3, Domain::Attacker);
    EXPECT_TRUE(cache.flush(3, Domain::Attacker));
    EXPECT_FALSE(cache.contains(3));
    EXPECT_FALSE(cache.flush(3, Domain::Attacker));
}

TEST(Cache, EventListenerSeesAllOperations)
{
    Cache cache(dmConfig(2));
    std::vector<CacheEvent> events;
    cache.setEventListener(
        [&](const CacheEvent &ev) { events.push_back(ev); });

    cache.access(0, Domain::Attacker);
    cache.access(0, Domain::Victim);
    cache.flush(0, Domain::Attacker);

    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].op, CacheOp::DemandAccess);
    EXPECT_FALSE(events[0].hit);
    EXPECT_TRUE(events[1].hit);
    EXPECT_EQ(events[1].domain, Domain::Victim);
    EXPECT_EQ(events[2].op, CacheOp::Flush);
}

TEST(Cache, EvictionEventCarriesOwner)
{
    Cache cache(dmConfig(2));
    CacheEvent last;
    cache.setEventListener([&](const CacheEvent &ev) { last = ev; });
    cache.access(0, Domain::Victim);
    cache.access(2, Domain::Attacker);  // conflicts with 0
    EXPECT_TRUE(last.evicted);
    EXPECT_EQ(last.evictedAddr, 0u);
    EXPECT_EQ(last.evictedOwner, Domain::Victim);
}

TEST(Cache, RandomSetMappingIsBalancedAndFixed)
{
    CacheConfig cfg = dmConfig(4);
    cfg.randomSetMapping = true;
    cfg.addressSpaceSize = 16;
    Cache a(cfg), b(cfg);

    std::vector<unsigned> counts(4, 0);
    for (std::uint64_t addr = 0; addr < 16; ++addr) {
        EXPECT_EQ(a.setIndexOf(addr), b.setIndexOf(addr))
            << "mapping must be a fixed function of the seed";
        ++counts[a.setIndexOf(addr)];
    }
    for (unsigned c : counts)
        EXPECT_EQ(c, 4u);  // balanced permutation

    // A different seed gives a different permutation (overwhelmingly).
    cfg.seed = 99;
    Cache c(cfg);
    bool any_diff = false;
    for (std::uint64_t addr = 0; addr < 16; ++addr)
        any_diff |= c.setIndexOf(addr) != a.setIndexOf(addr);
    EXPECT_TRUE(any_diff);
}

TEST(Cache, RandomPolicyIsSeedDeterministic)
{
    CacheConfig cfg = faConfig(4, ReplPolicy::Random);
    Cache a(cfg), b(cfg);
    // Drive both with the same access stream and compare contents.
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t addr = (i * 7 + 3) % 12;
        a.access(addr, Domain::Attacker);
        b.access(addr, Domain::Attacker);
    }
    for (std::uint64_t addr = 0; addr < 12; ++addr)
        EXPECT_EQ(a.contains(addr), b.contains(addr));
}

// ------------------------------------------------------- prefetchers --

TEST(NextLinePrefetcher, PrefetchesNextAddressWithWraparound)
{
    NextLinePrefetcher pf(8);
    EXPECT_EQ(pf.onDemandAccess(6, false),
              std::vector<std::uint64_t>{7});
    EXPECT_EQ(pf.onDemandAccess(7, false),
              std::vector<std::uint64_t>{0});
}

TEST(StreamPrefetcher, DetectsStrideAfterTwoObservations)
{
    StreamPrefetcher pf(32);
    EXPECT_TRUE(pf.onDemandAccess(4, false).empty());
    EXPECT_TRUE(pf.onDemandAccess(6, false).empty());  // stride learned
    const auto out = pf.onDemandAccess(8, false);      // stream confirmed
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 10u);
}

TEST(StreamPrefetcher, IgnoresIrregularPattern)
{
    StreamPrefetcher pf(32);
    pf.onDemandAccess(4, false);
    pf.onDemandAccess(9, false);
    EXPECT_TRUE(pf.onDemandAccess(11, false).empty());
    pf.reset();
    pf.onDemandAccess(1, false);
    EXPECT_TRUE(pf.onDemandAccess(2, false).empty());
}

TEST(Cache, NextLinePrefetcherInstallsNeighbor)
{
    CacheConfig cfg = dmConfig(4);
    cfg.prefetcher = PrefetcherKind::NextLine;
    cfg.addressSpaceSize = 8;
    Cache cache(cfg);
    cache.access(5, Domain::Attacker);
    EXPECT_TRUE(cache.contains(5));
    EXPECT_TRUE(cache.contains(6));  // prefetched
}

TEST(Cache, PrefetchEventsAreTagged)
{
    CacheConfig cfg = dmConfig(4);
    cfg.prefetcher = PrefetcherKind::NextLine;
    cfg.addressSpaceSize = 8;
    Cache cache(cfg);
    std::vector<CacheEvent> events;
    cache.setEventListener(
        [&](const CacheEvent &ev) { events.push_back(ev); });
    cache.access(1, Domain::Attacker);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].op, CacheOp::DemandAccess);
    EXPECT_EQ(events[1].op, CacheOp::Prefetch);
    EXPECT_EQ(events[1].addr, 2u);
}

// ----------------------------------------------- memory-system layer --

TEST(SingleLevelMemory, VictimMissFlag)
{
    SingleLevelMemory mem(faConfig(2));
    EXPECT_TRUE(mem.access(0, Domain::Victim).victimMissed);
    EXPECT_FALSE(mem.access(0, Domain::Victim).victimMissed);
    EXPECT_FALSE(mem.access(1, Domain::Attacker).victimMissed);
}

TEST(SingleLevelMemory, LockInterface)
{
    SingleLevelMemory mem(faConfig(2));
    EXPECT_TRUE(mem.lockLine(0, Domain::Victim));
    for (std::uint64_t a = 1; a < 6; ++a)
        mem.access(a, Domain::Attacker);
    EXPECT_TRUE(mem.contains(0));
    EXPECT_TRUE(mem.unlockLine(0));
}

TwoLevelConfig
twoLevel()
{
    TwoLevelConfig cfg;
    cfg.numCores = 2;
    cfg.l1.numSets = 4;
    cfg.l1.numWays = 1;
    cfg.l1.policy = ReplPolicy::Lru;
    cfg.l1.addressSpaceSize = 32;
    cfg.l2.numSets = 4;
    cfg.l2.numWays = 2;
    cfg.l2.policy = ReplPolicy::Lru;
    cfg.l2.addressSpaceSize = 32;
    return cfg;
}

TEST(TwoLevelMemory, HitLevels)
{
    TwoLevelMemory mem(twoLevel());
    EXPECT_EQ(mem.access(0, Domain::Attacker).hitLevel, 0);  // cold
    EXPECT_EQ(mem.access(0, Domain::Attacker).hitLevel, 1);  // L1 hit
}

TEST(TwoLevelMemory, L2HitAfterL1Conflict)
{
    TwoLevelMemory mem(twoLevel());
    mem.access(0, Domain::Attacker);
    // 4 maps to the same L1 set (4 % 4 == 0) but a different L2 way.
    mem.access(4, Domain::Attacker);
    const MemoryAccessResult r = mem.access(0, Domain::Attacker);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.hitLevel, 2);
}

TEST(TwoLevelMemory, InclusionBackInvalidatesL1)
{
    TwoLevelMemory mem(twoLevel());
    // Fill L2 set 0 (2 ways) from the attacker core: addrs 0, 4.
    mem.access(0, Domain::Attacker);
    mem.access(4, Domain::Attacker);
    // Victim core access to 8 (set 0) evicts one of them from L2; the
    // evicted line must also leave the attacker's L1 (inclusion).
    mem.access(8, Domain::Victim);
    const bool l2_has_0 = mem.l2().contains(0);
    const bool l1_has_0 = mem.l1(0).contains(0);
    if (!l2_has_0)
        EXPECT_FALSE(l1_has_0) << "inclusion violated";
    // Exactly one of {0, 4} was displaced.
    EXPECT_NE(mem.l2().contains(0), mem.l2().contains(4));
}

TEST(TwoLevelMemory, CrossCorePrimeProbeSignal)
{
    // The contention mechanism behind Table IV configs 16/17.
    TwoLevelMemory mem(twoLevel());
    // Attacker primes L2 set 0 with its two lines.
    mem.access(8, Domain::Attacker);
    mem.access(16, Domain::Attacker);
    // Victim touches a conflicting address on its own core.
    mem.access(0, Domain::Victim);
    // One attacker line was evicted from the shared L2: probing both,
    // at least one must now miss to memory.
    const MemoryAccessResult p1 = mem.access(8, Domain::Attacker);
    const MemoryAccessResult p2 = mem.access(16, Domain::Attacker);
    EXPECT_TRUE(p1.hitLevel == 0 || p2.hitLevel == 0);
}

TEST(TwoLevelMemory, FlushDropsAllLevels)
{
    TwoLevelMemory mem(twoLevel());
    mem.access(0, Domain::Attacker);
    mem.flush(0, Domain::Attacker);
    EXPECT_FALSE(mem.contains(0));
    EXPECT_FALSE(mem.l1(0).contains(0));
}

TEST(TwoLevelMemory, NumBlocksIsSharedLevel)
{
    TwoLevelMemory mem(twoLevel());
    EXPECT_EQ(mem.numBlocks(), 8u);
}

} // namespace
} // namespace autocat
