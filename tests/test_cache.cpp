/**
 * @file
 * Unit tests for CacheSet, Cache, prefetchers, and the memory-system
 * adapters (single-level and the composable N-level hierarchy):
 * inclusive back-invalidation, exclusive single-residency, flush
 * through every level, and the PL-cache uncached-serve path.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/cache.hpp"
#include "cache/memory_system.hpp"
#include "cache/prefetcher.hpp"

namespace autocat {
namespace {

CacheConfig
faConfig(unsigned ways, ReplPolicy policy = ReplPolicy::Lru)
{
    CacheConfig cfg;
    cfg.numSets = 1;
    cfg.numWays = ways;
    cfg.policy = policy;
    cfg.addressSpaceSize = 4 * ways;
    cfg.seed = 3;
    return cfg;
}

CacheConfig
dmConfig(unsigned sets)
{
    CacheConfig cfg;
    cfg.numSets = sets;
    cfg.numWays = 1;
    cfg.policy = ReplPolicy::Lru;
    cfg.addressSpaceSize = 4 * sets;
    cfg.seed = 3;
    return cfg;
}

// ---------------------------------------------------------- CacheSet --

/** A standalone set plus the flat metadata slice backing it. */
struct TestSet
{
    explicit TestSet(unsigned ways, ReplPolicy policy = ReplPolicy::Lru)
        : repl(policy, 1, ways, nullptr), set(ways, 0)
    {
    }

    AccessResult
    access(std::uint64_t addr, Domain domain)
    {
        return set.access(repl, addr, domain);
    }

    bool lockLine(std::uint64_t addr, Domain domain)
    {
        return set.lockLine(repl, addr, domain);
    }

    bool invalidate(std::uint64_t addr)
    {
        return set.invalidate(repl, addr);
    }

    void reset() { set.reset(repl); }

    ReplacementState repl;
    CacheSet set;
};

TEST(CacheSet, MissThenHit)
{
    TestSet s(2);
    EXPECT_FALSE(s.access(5, Domain::Attacker).hit);
    EXPECT_TRUE(s.access(5, Domain::Attacker).hit);
}

TEST(CacheSet, FillsInvalidWaysBeforeEvicting)
{
    TestSet s(3);
    EXPECT_FALSE(s.access(1, Domain::Attacker).evicted);
    EXPECT_FALSE(s.access(2, Domain::Attacker).evicted);
    EXPECT_FALSE(s.access(3, Domain::Attacker).evicted);
    const AccessResult r = s.access(4, Domain::Attacker);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedAddr, 1u);
}

TEST(CacheSet, EvictedOwnerIsLastToucher)
{
    TestSet s(1);
    s.access(1, Domain::Victim);
    const AccessResult r = s.access(2, Domain::Attacker);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedOwner, Domain::Victim);
}

TEST(CacheSet, HitTransfersOwnership)
{
    TestSet s(1);
    s.access(1, Domain::Victim);
    s.access(1, Domain::Attacker);  // hit by the attacker
    const AccessResult r = s.access(2, Domain::Victim);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedOwner, Domain::Attacker);
}

TEST(CacheSet, InvalidateRemovesLine)
{
    TestSet s(2);
    s.access(7, Domain::Attacker);
    EXPECT_TRUE(s.invalidate(7));
    EXPECT_FALSE(s.set.contains(7));
    EXPECT_FALSE(s.invalidate(7));  // already gone
}

TEST(CacheSet, LockPreventsEviction)
{
    TestSet s(2);
    ASSERT_TRUE(s.lockLine(0, Domain::Victim));
    s.access(1, Domain::Attacker);
    // Fill pressure: 0 must survive all of it.
    for (std::uint64_t a = 2; a < 10; ++a)
        s.access(a, Domain::Attacker);
    EXPECT_TRUE(s.set.contains(0));
    EXPECT_TRUE(s.set.isLocked(0));
}

TEST(CacheSet, AllLockedServesUncached)
{
    TestSet s(2);
    s.lockLine(0, Domain::Victim);
    s.lockLine(1, Domain::Victim);
    const AccessResult r = s.access(9, Domain::Attacker);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.servedUncached);
    EXPECT_FALSE(s.set.contains(9));
}

TEST(CacheSet, UnlockRestoresEvictability)
{
    TestSet s(1);
    s.lockLine(0, Domain::Victim);
    EXPECT_TRUE(s.set.unlockLine(0));
    const AccessResult r = s.access(1, Domain::Attacker);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedAddr, 0u);
}

TEST(CacheSet, LockedLineAccessStillUpdatesReplacementState)
{
    // The PL-cache leak (Section V-D): a hit on a locked line moves
    // the replacement metadata even though the line can't be evicted.
    TestSet s(4);
    s.lockLine(0, Domain::Victim);
    s.access(1, Domain::Attacker);
    s.access(2, Domain::Attacker);
    s.access(3, Domain::Attacker);
    // LRU order: 0 (locked, oldest), 1, 2, 3.
    s.access(0, Domain::Victim);  // hit on the locked line
    // Now 1 is the oldest unlocked line.
    const AccessResult r = s.access(4, Domain::Attacker);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedAddr, 1u);
}

TEST(CacheSet, ResetClearsEverything)
{
    TestSet s(2);
    s.lockLine(0, Domain::Victim);
    s.access(1, Domain::Attacker);
    s.reset();
    EXPECT_FALSE(s.set.contains(0));
    EXPECT_FALSE(s.set.contains(1));
    EXPECT_TRUE(s.set.residentAddrs().empty());
}

// ------------------------------------------------------------- Cache --

TEST(Cache, DirectMappedConflicts)
{
    Cache cache(dmConfig(4));
    cache.access(1, Domain::Attacker);
    EXPECT_TRUE(cache.contains(1));
    cache.access(5, Domain::Attacker);  // 5 % 4 == 1: conflict
    EXPECT_FALSE(cache.contains(1));
    EXPECT_TRUE(cache.contains(5));
    // Non-conflicting address is untouched.
    cache.access(2, Domain::Attacker);
    EXPECT_TRUE(cache.contains(5));
}

TEST(Cache, FlushInvalidates)
{
    Cache cache(faConfig(4));
    cache.access(3, Domain::Attacker);
    EXPECT_TRUE(cache.flush(3, Domain::Attacker));
    EXPECT_FALSE(cache.contains(3));
    EXPECT_FALSE(cache.flush(3, Domain::Attacker));
}

TEST(Cache, EventListenerSeesAllOperations)
{
    Cache cache(dmConfig(2));
    std::vector<CacheEvent> events;
    cache.setEventListener(
        [&](const CacheEvent &ev) { events.push_back(ev); });

    cache.access(0, Domain::Attacker);
    cache.access(0, Domain::Victim);
    cache.flush(0, Domain::Attacker);

    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].op, CacheOp::DemandAccess);
    EXPECT_FALSE(events[0].hit);
    EXPECT_TRUE(events[1].hit);
    EXPECT_EQ(events[1].domain, Domain::Victim);
    EXPECT_EQ(events[2].op, CacheOp::Flush);
}

TEST(Cache, EvictionEventCarriesOwner)
{
    Cache cache(dmConfig(2));
    CacheEvent last;
    cache.setEventListener([&](const CacheEvent &ev) { last = ev; });
    cache.access(0, Domain::Victim);
    cache.access(2, Domain::Attacker);  // conflicts with 0
    EXPECT_TRUE(last.evicted);
    EXPECT_EQ(last.evictedAddr, 0u);
    EXPECT_EQ(last.evictedOwner, Domain::Victim);
}

TEST(Cache, RandomSetMappingIsBalancedAndFixed)
{
    CacheConfig cfg = dmConfig(4);
    cfg.randomSetMapping = true;
    cfg.addressSpaceSize = 16;
    Cache a(cfg), b(cfg);

    std::vector<unsigned> counts(4, 0);
    for (std::uint64_t addr = 0; addr < 16; ++addr) {
        EXPECT_EQ(a.setIndexOf(addr), b.setIndexOf(addr))
            << "mapping must be a fixed function of the seed";
        ++counts[a.setIndexOf(addr)];
    }
    for (unsigned c : counts)
        EXPECT_EQ(c, 4u);  // balanced permutation

    // A different seed gives a different permutation (overwhelmingly).
    cfg.seed = 99;
    Cache c(cfg);
    bool any_diff = false;
    for (std::uint64_t addr = 0; addr < 16; ++addr)
        any_diff |= c.setIndexOf(addr) != a.setIndexOf(addr);
    EXPECT_TRUE(any_diff);
}

TEST(Cache, RandomPolicyIsSeedDeterministic)
{
    CacheConfig cfg = faConfig(4, ReplPolicy::Random);
    Cache a(cfg), b(cfg);
    // Drive both with the same access stream and compare contents.
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t addr = (i * 7 + 3) % 12;
        a.access(addr, Domain::Attacker);
        b.access(addr, Domain::Attacker);
    }
    for (std::uint64_t addr = 0; addr < 12; ++addr)
        EXPECT_EQ(a.contains(addr), b.contains(addr));
}

TEST(Cache, PolicyStateExposesFlatMetadata)
{
    Cache cache(faConfig(3));
    cache.access(0, Domain::Attacker);
    cache.access(1, Domain::Attacker);
    cache.access(2, Domain::Attacker);
    const auto ages = cache.policyState(0);
    ASSERT_EQ(ages.size(), 3u);
    EXPECT_EQ(ages[2], 0u);  // most recent
    EXPECT_EQ(ages[0], 2u);  // oldest
}

// ------------------------------------------------------- prefetchers --

TEST(NextLinePrefetcher, PrefetchesNextAddressWithWraparound)
{
    NextLinePrefetcher pf(8);
    EXPECT_EQ(pf.onDemandAccess(6, false),
              std::vector<std::uint64_t>{7});
    EXPECT_EQ(pf.onDemandAccess(7, false),
              std::vector<std::uint64_t>{0});
}

TEST(StreamPrefetcher, DetectsStrideAfterTwoObservations)
{
    StreamPrefetcher pf(32);
    EXPECT_TRUE(pf.onDemandAccess(4, false).empty());
    EXPECT_TRUE(pf.onDemandAccess(6, false).empty());  // stride learned
    const auto out = pf.onDemandAccess(8, false);      // stream confirmed
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 10u);
}

TEST(StreamPrefetcher, IgnoresIrregularPattern)
{
    StreamPrefetcher pf(32);
    pf.onDemandAccess(4, false);
    pf.onDemandAccess(9, false);
    EXPECT_TRUE(pf.onDemandAccess(11, false).empty());
    pf.reset();
    pf.onDemandAccess(1, false);
    EXPECT_TRUE(pf.onDemandAccess(2, false).empty());
}

TEST(Cache, NextLinePrefetcherInstallsNeighbor)
{
    CacheConfig cfg = dmConfig(4);
    cfg.prefetcher = PrefetcherKind::NextLine;
    cfg.addressSpaceSize = 8;
    Cache cache(cfg);
    cache.access(5, Domain::Attacker);
    EXPECT_TRUE(cache.contains(5));
    EXPECT_TRUE(cache.contains(6));  // prefetched
}

TEST(Cache, PrefetchEventsAreTagged)
{
    CacheConfig cfg = dmConfig(4);
    cfg.prefetcher = PrefetcherKind::NextLine;
    cfg.addressSpaceSize = 8;
    Cache cache(cfg);
    std::vector<CacheEvent> events;
    cache.setEventListener(
        [&](const CacheEvent &ev) { events.push_back(ev); });
    cache.access(1, Domain::Attacker);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].op, CacheOp::DemandAccess);
    EXPECT_EQ(events[1].op, CacheOp::Prefetch);
    EXPECT_EQ(events[1].addr, 2u);
}

// ----------------------------------------------- memory-system layer --

TEST(SingleLevelMemory, VictimMissFlag)
{
    SingleLevelMemory mem(faConfig(2));
    EXPECT_TRUE(mem.access(0, Domain::Victim).victimMissed);
    EXPECT_FALSE(mem.access(0, Domain::Victim).victimMissed);
    EXPECT_FALSE(mem.access(1, Domain::Attacker).victimMissed);
}

TEST(SingleLevelMemory, LockInterface)
{
    SingleLevelMemory mem(faConfig(2));
    EXPECT_TRUE(mem.lockLine(0, Domain::Victim));
    for (std::uint64_t a = 1; a < 6; ++a)
        mem.access(a, Domain::Attacker);
    EXPECT_TRUE(mem.contains(0));
    EXPECT_TRUE(mem.unlockLine(0));
}

// ----------------------------------------------------- CacheHierarchy --

CacheConfig
levelConfig(unsigned sets, unsigned ways)
{
    CacheConfig cfg;
    cfg.numSets = sets;
    cfg.numWays = ways;
    cfg.policy = ReplPolicy::Lru;
    cfg.addressSpaceSize = 32;
    return cfg;
}

/** Private DM L1s (4x1) + shared L2 (4x2) — the old two-level shape. */
HierarchyConfig
l1l2(InclusionPolicy l2Inclusion = InclusionPolicy::Inclusive)
{
    return HierarchyConfig::twoLevel(levelConfig(4, 1), levelConfig(4, 2),
                                     l2Inclusion);
}

/** Private L1 (4x1) + private L2 (4x2) + shared L3 (4x4). */
HierarchyConfig
threeLevel()
{
    HierarchyConfig cfg;
    cfg.numCores = 2;
    cfg.levels.push_back(
        {levelConfig(4, 1), InclusionPolicy::Inclusive, false});
    cfg.levels.push_back(
        {levelConfig(4, 2), InclusionPolicy::Inclusive, false});
    cfg.levels.push_back(
        {levelConfig(4, 4), InclusionPolicy::Inclusive, true});
    return cfg;
}

TEST(CacheHierarchy, HitLevels)
{
    CacheHierarchy mem(l1l2());
    EXPECT_EQ(mem.access(0, Domain::Attacker).hitLevel, 0);  // cold
    EXPECT_EQ(mem.access(0, Domain::Attacker).hitLevel, 1);  // L1 hit
}

TEST(CacheHierarchy, L2HitAfterL1Conflict)
{
    CacheHierarchy mem(l1l2());
    mem.access(0, Domain::Attacker);
    // 4 maps to the same L1 set (4 % 4 == 0) but a different L2 way.
    mem.access(4, Domain::Attacker);
    const MemoryAccessResult r = mem.access(0, Domain::Attacker);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.hitLevel, 2);
}

TEST(CacheHierarchy, InclusionBackInvalidatesL1)
{
    CacheHierarchy mem(l1l2());
    // Fill L2 set 0 (2 ways) from the attacker core: addrs 0, 4.
    mem.access(0, Domain::Attacker);
    mem.access(4, Domain::Attacker);
    // Victim core access to 8 (set 0) evicts one of them from L2; the
    // evicted line must also leave the attacker's L1 (inclusion).
    mem.access(8, Domain::Victim);
    const bool l2_has_0 = mem.level(1).contains(0);
    const bool l1_has_0 = mem.level(0, 0).contains(0);
    if (!l2_has_0)
        EXPECT_FALSE(l1_has_0) << "inclusion violated";
    // Exactly one of {0, 4} was displaced.
    EXPECT_NE(mem.level(1).contains(0), mem.level(1).contains(4));
}

TEST(CacheHierarchy, CrossCorePrimeProbeSignal)
{
    // The contention mechanism behind Table IV configs 16/17.
    CacheHierarchy mem(l1l2());
    // Attacker primes L2 set 0 with its two lines.
    mem.access(8, Domain::Attacker);
    mem.access(16, Domain::Attacker);
    // Victim touches a conflicting address on its own core.
    mem.access(0, Domain::Victim);
    // One attacker line was evicted from the shared L2: probing both,
    // at least one must now miss to memory.
    const MemoryAccessResult p1 = mem.access(8, Domain::Attacker);
    const MemoryAccessResult p2 = mem.access(16, Domain::Attacker);
    EXPECT_TRUE(p1.hitLevel == 0 || p2.hitLevel == 0);
}

TEST(CacheHierarchy, PrivateInclusiveEvictionStaysOnItsCore)
{
    // A PRIVATE inclusive level's eviction back-invalidates only its
    // own core's inner caches: attacker-private cache pressure must
    // never evict the victim's private copies (that channel does not
    // exist in hardware).
    HierarchyConfig cfg;
    cfg.numCores = 2;
    cfg.levels.push_back(
        {levelConfig(4, 1), InclusionPolicy::Inclusive, false});
    cfg.levels.push_back(
        {levelConfig(4, 2), InclusionPolicy::Inclusive, false});
    CacheHierarchy mem(cfg);

    mem.access(0, Domain::Victim);  // victim path holds 0 at L1 and L2
    mem.access(0, Domain::Attacker);
    mem.access(4, Domain::Attacker);
    mem.access(8, Domain::Attacker);  // evicts 0 from the attacker's L2

    EXPECT_FALSE(mem.level(1, 0).contains(0));  // attacker L2 dropped it
    EXPECT_FALSE(mem.level(0, 0).contains(0));  // and its L1 copy
    EXPECT_TRUE(mem.level(1, 1).contains(0));   // victim path untouched
    EXPECT_TRUE(mem.level(0, 1).contains(0));
    EXPECT_EQ(mem.access(0, Domain::Victim).hitLevel, 1);
}

TEST(CacheHierarchy, LockInstallEvictionKeepsInclusion)
{
    // Locking installs like any other fill: when the L2 lock-install
    // evicts a line, that line's inner copies must be back-invalidated
    // or the inclusion invariant silently breaks.
    CacheHierarchy mem(l1l2());
    mem.access(0, Domain::Victim);    // victim L1 and shared L2 hold 0
    mem.access(4, Domain::Attacker);  // L2 set 0 now {0, 4} (full)

    // Locks along core 0; the L2 install of 8 evicts 0 (LRU).
    mem.lockLine(8, Domain::Attacker);
    ASSERT_FALSE(mem.level(1).contains(0));
    EXPECT_FALSE(mem.level(0, 1).contains(0))
        << "inner copy of the lock-install victim survived";
}

TEST(CacheHierarchy, ExclusiveHitStillSpillsTheInFlightVictim)
{
    // A hit at an exclusive level ends the demand walk, but a victim
    // evicted by that level's absorb must still spill to the next
    // exclusive level instead of vanishing.
    HierarchyConfig cfg;
    cfg.numCores = 2;
    cfg.levels.push_back(
        {levelConfig(1, 2), InclusionPolicy::Inclusive, false});
    cfg.levels.push_back(
        {levelConfig(4, 2), InclusionPolicy::Exclusive, true});
    cfg.levels.push_back(
        {levelConfig(4, 2), InclusionPolicy::Exclusive, true});
    CacheHierarchy mem(cfg);

    // Churn that ends with an L2 hit on 1 whose absorb (of L1 victim
    // 16, L2 set 0 full) evicts 8 from L2 — 8 must land in L3.
    for (std::uint64_t a : {0, 1, 4, 8, 12, 16})
        mem.access(a, Domain::Attacker);
    mem.access(0, Domain::Attacker);
    const MemoryAccessResult r = mem.access(1, Domain::Attacker);
    EXPECT_EQ(r.hitLevel, 2);
    EXPECT_TRUE(mem.level(2).contains(8))
        << "victim of the exclusive-hit absorb was dropped";

    // Conservation: every touched line is still resident somewhere,
    // and on exactly one level of the (single-core) path.
    for (std::uint64_t a : {0, 1, 4, 8, 12, 16}) {
        int copies = 0;
        copies += mem.level(0, 0).contains(a) ? 1 : 0;
        copies += mem.level(1).contains(a) ? 1 : 0;
        copies += mem.level(2).contains(a) ? 1 : 0;
        EXPECT_EQ(copies, 1) << "address " << a;
    }
}

TEST(CacheHierarchy, FlushDropsAllLevels)
{
    CacheHierarchy mem(l1l2());
    mem.access(0, Domain::Attacker);
    mem.flush(0, Domain::Attacker);
    EXPECT_FALSE(mem.contains(0));
    EXPECT_FALSE(mem.level(0, 0).contains(0));
}

TEST(CacheHierarchy, FlushReachesEveryLevelOfThreeLevelHierarchy)
{
    CacheHierarchy mem(threeLevel());
    ASSERT_EQ(mem.depth(), 3u);
    mem.access(0, Domain::Attacker);
    EXPECT_TRUE(mem.level(0, 0).contains(0));
    EXPECT_TRUE(mem.level(1, 0).contains(0));
    EXPECT_TRUE(mem.level(2).contains(0));

    mem.flush(0, Domain::Attacker);
    EXPECT_FALSE(mem.level(0, 0).contains(0));
    EXPECT_FALSE(mem.level(1, 0).contains(0));
    EXPECT_FALSE(mem.level(2).contains(0));
    EXPECT_FALSE(mem.contains(0));
}

TEST(CacheHierarchy, ThreeLevelHitLevels)
{
    CacheHierarchy mem(threeLevel());
    mem.access(0, Domain::Attacker);
    // Conflict 0 out of the DM L1 (4 % 4 == 0) and the 2-way L2
    // (also set 0; fills way 2 of L3 set 0).
    mem.access(4, Domain::Attacker);
    mem.access(8, Domain::Attacker);  // evicts 0 from L2 (LRU)
    const MemoryAccessResult r = mem.access(0, Domain::Attacker);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.hitLevel, 3);
}

TEST(CacheHierarchy, ExclusiveL2SingleResidency)
{
    CacheHierarchy mem(l1l2(InclusionPolicy::Exclusive));
    // Cold miss: installs in L1 only — an exclusive L2 has no demand
    // fill path.
    mem.access(0, Domain::Attacker);
    EXPECT_TRUE(mem.level(0, 0).contains(0));
    EXPECT_FALSE(mem.level(1).contains(0));

    // Conflicting access evicts 0 from the DM L1; the victim line must
    // move into the exclusive L2 (and only there).
    mem.access(4, Domain::Attacker);
    EXPECT_FALSE(mem.level(0, 0).contains(0));
    EXPECT_TRUE(mem.level(1).contains(0));
    EXPECT_TRUE(mem.level(0, 0).contains(4));
    EXPECT_FALSE(mem.level(1).contains(4));

    // Re-access 0: L2 hit; the line moves back inward and leaves L2.
    const MemoryAccessResult r = mem.access(0, Domain::Attacker);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.hitLevel, 2);
    EXPECT_TRUE(mem.level(0, 0).contains(0));
    EXPECT_FALSE(mem.level(1).contains(0));
    // ... and 4, evicted by 0's refill, now lives in L2 only.
    EXPECT_FALSE(mem.level(0, 0).contains(4));
    EXPECT_TRUE(mem.level(1).contains(4));
}

TEST(CacheHierarchy, PlCacheAllWaysLockedServesUncached)
{
    // Lock every way of L1 set 0 and both L2 ways of set 0 along the
    // victim-core path; a conflicting access must then be served
    // uncached end to end: no hit, no install, no state perturbation.
    // (2-way L1 so the set can hold both locked lines.)
    CacheHierarchy mem(HierarchyConfig::twoLevel(levelConfig(4, 2),
                                                 levelConfig(4, 2)));
    ASSERT_TRUE(mem.lockLine(0, Domain::Victim));
    ASSERT_TRUE(mem.lockLine(4, Domain::Victim));

    const MemoryAccessResult r = mem.access(8, Domain::Victim);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.hitLevel, 0);
    EXPECT_TRUE(r.servedUncached);
    // An uncached serve is not a refill from memory: miss-based
    // detection must not count it.
    EXPECT_FALSE(r.victimMissed);
    EXPECT_FALSE(mem.contains(8));

    // The locked lines are untouched and still serve hits.
    EXPECT_EQ(mem.access(0, Domain::Victim).hitLevel, 1);
    EXPECT_TRUE(mem.unlockLine(0));
}

TEST(CacheHierarchy, VictimMissedConsistentAcrossDepths)
{
    // Depth 1 behaves exactly like SingleLevelMemory.
    CacheHierarchy d1(HierarchyConfig::singleLevel(levelConfig(1, 2)));
    EXPECT_TRUE(d1.access(0, Domain::Victim).victimMissed);
    EXPECT_FALSE(d1.access(0, Domain::Victim).victimMissed);
    EXPECT_FALSE(d1.access(1, Domain::Attacker).victimMissed);

    // Depth 2: a victim miss to memory sets the flag; an L2 hit does
    // not.
    CacheHierarchy d2(l1l2());
    EXPECT_TRUE(d2.access(0, Domain::Victim).victimMissed);
    d2.access(4, Domain::Victim);             // conflicts 0 out of L1
    EXPECT_FALSE(d2.access(0, Domain::Victim).victimMissed);  // L2 hit
}

TEST(CacheHierarchy, NumBlocksIsOutermostLevel)
{
    CacheHierarchy mem(l1l2());
    EXPECT_EQ(mem.numBlocks(), 8u);
}

TEST(CacheHierarchy, RejectsDegenerateConfigs)
{
    HierarchyConfig empty;
    EXPECT_THROW(CacheHierarchy{empty}, std::invalid_argument);

    HierarchyConfig one_core = l1l2();
    one_core.numCores = 1;  // private L1s need a core per domain
    EXPECT_THROW(CacheHierarchy{one_core}, std::invalid_argument);
}

} // namespace
} // namespace autocat
