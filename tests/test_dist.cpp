/**
 * @file
 * Distributed sweep service tests: the cell job/row wire format
 * (round trips + corruption rejection), crash-safe checkpoint writes,
 * and the scheduler's failure semantics — worker death mid-cell,
 * checkpoint resume, heartbeat-timeout requeue, retry-budget
 * exhaustion — all pinned against the byte-identity oracle: a sharded
 * run (including one with a deliberately killed worker) must render
 * the exact same report as `workers=1` in-process.
 *
 * Scheduler tests spawn the real cell_runner executable, located via
 * the AUTOCAT_CELL_RUNNER environment variable (set by CTest); they
 * skip when it is absent (e.g. running the binary by hand).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <unistd.h>

#include "core/config_parser.hpp"
#include "eval/report.hpp"
#include "eval/sweep.hpp"
#include "eval/sweep_config.hpp"
#include "serve/cell_exec.hpp"
#include "serve/dist_scheduler.hpp"
#include "serve/wire.hpp"
#include "util/atomic_file.hpp"

namespace autocat {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory under the system temp root. */
fs::path
scratchDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() /
                         ("autocat_dist_" + name + "_" +
                          std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Cheapest real grid that exercises multiple cells: 2 scenarios x 2
 *  policies over a 2-block cache. Two epochs per cell so that, with
 *  checkpoint_every=1, a mid-cell checkpoint boundary exists to
 *  kill and resume across. */
SweepConfig
tinyDistSweep()
{
    SweepConfig cfg;
    cfg.name = "tiny-dist";
    cfg.base.env.cache.numSets = 1;
    cfg.base.env.cache.numWays = 2;
    cfg.base.env.cache.addressSpaceSize = 6;
    cfg.base.env.attackAddrS = 0;
    cfg.base.env.attackAddrE = 2;
    cfg.base.env.victimAddrS = 0;
    cfg.base.env.victimAddrE = 0;
    cfg.base.env.victimNoAccessEnable = true;
    cfg.base.env.windowSize = 8;
    cfg.base.ppo.stepsPerEpoch = 200;
    cfg.base.ppo.minibatchSize = 100;
    cfg.base.maxEpochs = 2;
    cfg.base.evalEpisodes = 5;
    cfg.grid.scenarios = {"guessing_game", "l1l2_private"};
    cfg.grid.policies = {ReplPolicy::Lru, ReplPolicy::TreePlru};
    cfg.grid.seeds = {5};
    return cfg;
}

/** Runner executable, or empty when the env var is unset. */
std::string
runnerPath()
{
    const char *p = std::getenv("AUTOCAT_CELL_RUNNER");
    return p ? p : "";
}

DistSweepOptions
distOptions(const fs::path &root)
{
    DistSweepOptions opts;
    opts.processes = 3;
    opts.runnerPath = runnerPath();
    opts.workDir = (root / "work").string();
    opts.checkpointDir = (root / "ckpt").string();
    opts.checkpointEvery = 1;
    return opts;
}

// --------------------------------------------------------------- wire

TEST(CellWire, JobRoundTripPreservesTheCell)
{
    std::vector<SweepCell> cells = expandSweepGrid(tinyDistSweep());
    ASSERT_GE(cells.size(), 2u);
    SweepCell &cell = cells[1];
    CurriculumPhase phase;
    phase.name = "clean";
    phase.maxEpochs = 2;
    phase.targetAccuracy = 0.9;
    cell.phases.push_back(phase);

    const SweepCell back = deserializeCellJob(serializeCellJob(cell));

    EXPECT_EQ(back.index, cell.index);
    EXPECT_EQ(back.label, cell.label);
    EXPECT_EQ(back.scenario, cell.scenario);
    EXPECT_EQ(back.hierarchy, cell.hierarchy);
    EXPECT_EQ(back.policy, cell.policy);
    EXPECT_EQ(back.seed, cell.seed);
    ASSERT_EQ(back.phases.size(), 1u);
    EXPECT_EQ(back.phases[0].name, "clean");
    EXPECT_EQ(back.phases[0].maxEpochs, 2);
    EXPECT_DOUBLE_EQ(back.phases[0].targetAccuracy, 0.9);
    // Renderer coverage IS wire coverage: whatever config state
    // survives render->parse must be exactly what came in. Comparing
    // rendered text covers every field the renderer knows about —
    // including the cell-critical ones (seeds, minibatch size, lambda,
    // layers) that a lossy wire would silently reset.
    EXPECT_EQ(renderExplorationConfig(back.config),
              renderExplorationConfig(cell.config));
}

TEST(CellWire, RowRoundTripPreservesTheOutcome)
{
    SweepCellResult row;
    row.cell.index = 7;
    row.completed = true;
    row.wallSeconds = 1.25;
    row.result.converged = true;
    row.result.epochsToConverge = 3;
    row.result.finalAccuracy = 0.975;
    row.result.finalEpisodeLength = 9.5;
    row.result.bitRate = 0.42;
    row.result.detectionRate = 0.01;
    row.result.envSteps = 123456;
    row.result.sequence.push({ActionKind::Access, 3});
    row.result.sequence.push({ActionKind::TriggerVictim, 0});
    row.result.sequence.push({ActionKind::Guess, 1});
    row.result.finalGuess = "guess 1";
    row.result.category = AttackCategory::EvictReload;

    const SweepCellResult back =
        deserializeCellRow(serializeCellRow(row));

    EXPECT_EQ(back.cell.index, 7u);
    EXPECT_TRUE(back.completed);
    EXPECT_TRUE(back.error.empty());
    EXPECT_DOUBLE_EQ(back.wallSeconds, 1.25);
    EXPECT_TRUE(back.result.converged);
    EXPECT_EQ(back.result.epochsToConverge, 3);
    EXPECT_DOUBLE_EQ(back.result.finalAccuracy, 0.975);
    EXPECT_DOUBLE_EQ(back.result.finalEpisodeLength, 9.5);
    EXPECT_DOUBLE_EQ(back.result.bitRate, 0.42);
    EXPECT_DOUBLE_EQ(back.result.detectionRate, 0.01);
    EXPECT_EQ(back.result.envSteps, 123456);
    ASSERT_EQ(back.result.sequence.size(), 3u);
    EXPECT_EQ(back.result.sequence.steps()[0].kind, ActionKind::Access);
    EXPECT_EQ(back.result.sequence.steps()[1].kind,
              ActionKind::TriggerVictim);
    EXPECT_EQ(back.result.sequence.steps()[2].addr, 1u);
    EXPECT_EQ(back.result.finalGuess, "guess 1");
    EXPECT_EQ(back.result.category, AttackCategory::EvictReload);
}

TEST(CellWire, FailureRowCarriesTheError)
{
    SweepCellResult row;
    row.cell.index = 2;
    row.completed = false;
    row.error = "env: unknown scenario \"nope\"";

    const SweepCellResult back =
        deserializeCellRow(serializeCellRow(row));
    EXPECT_FALSE(back.completed);
    EXPECT_EQ(back.error, "env: unknown scenario \"nope\"");
}

TEST(CellWire, RejectsCorruptBlobs)
{
    const std::vector<SweepCell> cells =
        expandSweepGrid(tinyDistSweep());
    const std::string blob = serializeCellJob(cells[0]);

    // Bit flip in the payload: the trailing checksum catches it.
    {
        std::string bad = blob;
        bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x10);
        EXPECT_THROW(deserializeCellJob(bad), std::runtime_error);
    }
    // Truncation (a partially-written file without the atomic rename).
    EXPECT_THROW(deserializeCellJob(blob.substr(0, blob.size() - 3)),
                 std::runtime_error);
    EXPECT_THROW(deserializeCellJob(blob.substr(0, 10)),
                 std::runtime_error);
    EXPECT_THROW(deserializeCellJob(std::string()), std::runtime_error);
    // Wrong kind: a row blob handed to the job parser (magic check).
    SweepCellResult row;
    row.cell.index = 0;
    EXPECT_THROW(deserializeCellJob(serializeCellRow(row)),
                 std::runtime_error);
    EXPECT_THROW(deserializeCellRow(blob), std::runtime_error);
    // Wrong version byte: future formats must be rejected, not guessed.
    {
        std::string bad = blob;
        bad[8] = static_cast<char>(bad[8] + 1); // u32 version LSB
        EXPECT_THROW(deserializeCellJob(bad), std::runtime_error);
    }
    // Trailing garbage after an otherwise-valid section.
    EXPECT_THROW(deserializeCellJob(blob + "x"), std::runtime_error);
}

// ------------------------------------------------------- atomic writes

TEST(AtomicFile, WriteReadRoundTripAndOverwrite)
{
    const fs::path root = scratchDir("atomic");
    const std::string path = (root / "f.bin").string();

    const std::string payload("\x00\x01garbage\xff\n binary", 20);
    atomicWriteFile(path, payload, "test file");
    EXPECT_EQ(readWholeFile(path, "test file"), payload);

    atomicWriteFile(path, "second", "test file");
    EXPECT_EQ(readWholeFile(path, "test file"), "second");
    fs::remove_all(root);
}

TEST(AtomicFile, StaleTempFilesDoNotShadowTheRealFile)
{
    // A crash between temp-write and rename leaves `<path>.tmp.<pid>`
    // behind; the real path must stay readable and a later save must
    // still land.
    const fs::path root = scratchDir("atomic_stale");
    const std::string path = (root / "ckpt").string();
    atomicWriteFile(path, "good", "test file");
    {
        std::ofstream stale(path + ".tmp.99999", std::ios::binary);
        stale << "half-writ";
    }
    EXPECT_EQ(readWholeFile(path, "test file"), "good");
    atomicWriteFile(path, "newer", "test file");
    EXPECT_EQ(readWholeFile(path, "test file"), "newer");
    fs::remove_all(root);
}

// ---------------------------------------------------------- scheduler

TEST(DistScheduler, RejectsMissingRunner)
{
    const fs::path root = scratchDir("norunner");
    std::vector<SweepCell> cells = expandSweepGrid(tinyDistSweep());
    DistSweepOptions opts;
    opts.runnerPath = (root / "no_such_runner").string();
    opts.workDir = (root / "work").string();
    EXPECT_THROW(
        runSweepCellsDist("x", std::move(cells), opts),
        std::invalid_argument);
    fs::remove_all(root);
}

/**
 * THE acceptance oracle: a grid sharded across 3 worker processes —
 * one of which is SIGKILLed mid-cell right after a checkpoint write
 * and resumed by the scheduler — renders byte-identical default
 * reports to the same grid run in-process with workers=1. Checkpoint
 * cadence must match between the runs (boundaries resync env
 * streams); directories must differ (no shared state).
 */
TEST(DistScheduler, KilledWorkerResumesByteIdentical)
{
    if (runnerPath().empty())
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";
    const fs::path root = scratchDir("identical");

    const SweepConfig cfg = tinyDistSweep();
    const std::vector<SweepCell> cells = expandSweepGrid(cfg);
    ASSERT_EQ(cells.size(), 4u);

    const SweepReport local = runSweepCells(
        cfg.name, cells, /*workers=*/1, {},
        (root / "local_ckpt").string(), /*checkpoint_every=*/1);

    DistSweepOptions opts = distOptions(root);
    opts.chaosKillCell = 2;
    opts.chaosKillAfter = 1;
    const SweepReport dist =
        runSweepCellsDist(cfg.name, cells, opts);

    ASSERT_EQ(dist.cells.size(), local.cells.size());
    EXPECT_EQ(dist.workersUsed, 3);
    // The injected death consumed exactly one extra attempt, on the
    // targeted cell only, and its retry finished the cell.
    EXPECT_EQ(dist.cells[2].attempts, 2);
    EXPECT_TRUE(dist.cells[2].completed);
    for (const std::size_t i : {0u, 1u, 3u})
        EXPECT_EQ(dist.cells[i].attempts, 1) << "cell " << i;

    EXPECT_EQ(sweepReportJson(dist, {}), sweepReportJson(local, {}));
    fs::remove_all(root);
}

TEST(DistScheduler, DeterministicCellFailureIsARowNotARetry)
{
    if (runnerPath().empty())
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";
    const fs::path root = scratchDir("cellfail");

    std::vector<SweepCell> cells = expandSweepGrid(tinyDistSweep());
    cells.resize(2);
    // An unknown scenario throws inside the campaign on every attempt
    // identically; the runner must return it as a failure ROW (exit 0)
    // so the scheduler records it without burning retries, and the
    // rest of the grid still runs.
    cells[1].scenario = "no_such_scenario";
    cells[1].config.scenario = "no_such_scenario";

    const SweepReport report =
        runSweepCellsDist("fail", cells, distOptions(root));

    ASSERT_EQ(report.cells.size(), 2u);
    EXPECT_TRUE(report.cells[0].completed);
    EXPECT_FALSE(report.cells[1].completed);
    EXPECT_EQ(report.cells[1].attempts, 1);
    EXPECT_NE(report.cells[1].error.find("no_such_scenario"),
              std::string::npos)
        << report.cells[1].error;
    // Failure rows keep their cell identity for the report.
    EXPECT_EQ(report.cells[1].cell.scenario, "no_such_scenario");
    EXPECT_EQ(report.numFailed(), 1u);
    fs::remove_all(root);
}

TEST(DistScheduler, HungWorkerIsKilledRequeuedAndFinishes)
{
    if (runnerPath().empty())
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";
    const fs::path root = scratchDir("hang");

    std::vector<SweepCell> cells = expandSweepGrid(tinyDistSweep());
    cells.resize(2);

    DistSweepOptions opts = distOptions(root);
    opts.chaosKillCell = 1;
    opts.chaosHang = true; // first attempt of cell 1 wedges silently
    opts.heartbeatTimeoutS = 1.0;
    opts.maxRetries = 1;

    const SweepReport report =
        runSweepCellsDist("hang", cells, opts);

    ASSERT_EQ(report.cells.size(), 2u);
    EXPECT_TRUE(report.cells[1].completed) << report.cells[1].error;
    EXPECT_EQ(report.cells[1].attempts, 2);
    EXPECT_EQ(report.cells[0].attempts, 1);
    EXPECT_EQ(report.numFailed(), 0u);
    fs::remove_all(root);
}

TEST(DistScheduler, RetryBudgetExhaustionLandsAsPerCellError)
{
    if (runnerPath().empty())
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";
    const fs::path root = scratchDir("budget");

    std::vector<SweepCell> cells = expandSweepGrid(tinyDistSweep());
    cells.resize(2);

    DistSweepOptions opts = distOptions(root);
    opts.chaosKillCell = 0;
    opts.chaosKillAfter = 1;
    opts.maxRetries = 0; // the injected death exhausts the budget

    const SweepReport report =
        runSweepCellsDist("budget", cells, opts);

    ASSERT_EQ(report.cells.size(), 2u);
    EXPECT_FALSE(report.cells[0].completed);
    EXPECT_EQ(report.cells[0].attempts, 1);
    EXPECT_NE(report.cells[0].error.find("died"), std::string::npos)
        << report.cells[0].error;
    // The healthy cell is unaffected: worker failures never abort the
    // rest of the grid.
    EXPECT_TRUE(report.cells[1].completed);
    EXPECT_EQ(report.numFailed(), 1u);
    fs::remove_all(root);
}

// ------------------------------------------------ local checkpointing

TEST(SweepCheckpointing, ReportIndependentOfWorkerCount)
{
    const fs::path root = scratchDir("workers");
    const SweepConfig cfg = tinyDistSweep();
    const std::vector<SweepCell> cells = expandSweepGrid(cfg);

    const SweepReport one = runSweepCells(
        cfg.name, cells, 1, {}, (root / "ck1").string(), 1);
    const SweepReport three = runSweepCells(
        cfg.name, cells, 3, {}, (root / "ck3").string(), 1);

    EXPECT_EQ(sweepReportJson(one, {}), sweepReportJson(three, {}));
    fs::remove_all(root);
}

TEST(SweepCheckpointing, ConfigKeysRoundTrip)
{
    SweepConfig cfg = tinyDistSweep();
    cfg.checkpointDir = "ckpt/cells";
    cfg.checkpointInterval = 5;
    cfg.distProcesses = 3;
    cfg.distRetries = 2;
    cfg.heartbeatTimeoutS = 30.0;
    cfg.distWorkDir = "scratch/dist";

    const SweepConfig back =
        parseSweepConfig(renderSweepConfig(cfg));
    EXPECT_EQ(back.checkpointDir, "ckpt/cells");
    EXPECT_EQ(back.checkpointInterval, 5);
    EXPECT_EQ(back.distProcesses, 3);
    EXPECT_EQ(back.distRetries, 2);
    EXPECT_DOUBLE_EQ(back.heartbeatTimeoutS, 30.0);
    EXPECT_EQ(back.distWorkDir, "scratch/dist");
    // Render->parse->render is a fixed point for the new keys too.
    EXPECT_EQ(renderSweepConfig(back), renderSweepConfig(cfg));
    // runnerPath and the chaos hooks are CLI-only, never config keys.
    EXPECT_THROW(parseSweepConfig(std::string("sweep.runner = x\n")),
                 std::invalid_argument);
    EXPECT_THROW(
        parseSweepConfig(std::string("sweep.chaos_kill_cell = 1\n")),
        std::invalid_argument);
}

} // namespace
} // namespace autocat
