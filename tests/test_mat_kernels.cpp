/**
 * @file
 * Correctness tests for the blocked/SIMD matmul kernels (rl/mat.hpp)
 * against a naive triple-loop reference, across shapes chosen to hit
 * every tile-edge path: non-multiple-of-tile M (4-row blocks), N
 * (4/16-column blocks), and K (8/16-lane vector steps), plus the
 * fused bias+ReLU path and the row-purity guarantee the
 * double-buffered collector relies on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "rl/actor_critic.hpp"
#include "rl/mat.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.gaussian());
    return m;
}

/** Naive reference C = A * B. */
Matrix
refMatmul(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double s = 0.0;
            for (std::size_t p = 0; p < a.cols(); ++p)
                s += static_cast<double>(a(i, p)) *
                     static_cast<double>(b(p, j));
            c(i, j) = static_cast<float>(s);
        }
    return c;
}

Matrix
transpose(const Matrix &m)
{
    Matrix t(m.cols(), m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            t(c, r) = m(r, c);
    return t;
}

void
expectNear(const Matrix &got, const Matrix &want, double tol)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < got.size(); ++i) {
        const double w = want.data()[i];
        EXPECT_NEAR(got.data()[i], w, tol * (1.0 + std::abs(w)))
            << "at flat index " << i;
    }
}

/**
 * Shapes straddling the register-tile boundaries: the dot kernel tiles
 * j by 4 and k by 8/16, the broadcast kernels tile i by 4 and j by 16.
 */
struct Shape
{
    std::size_t m, k, n;
};

const Shape kOddShapes[] = {
    {1, 1, 1},    {1, 7, 1},    {2, 8, 3},     {3, 15, 5},
    {4, 16, 16},  {5, 17, 17},  {7, 23, 19},   {8, 24, 31},
    {9, 33, 33},  {13, 40, 6},  {16, 64, 48},  {17, 65, 49},
    {1, 256, 128}, {6, 129, 10},
};

TEST(MatKernels, MatmulMatchesReferenceOnOddShapes)
{
    Rng rng(21);
    for (const Shape &s : kOddShapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.k, s.n, rng);
        expectNear(matmul(a, b), refMatmul(a, b), 1e-4);
    }
}

TEST(MatKernels, MatmulTransBMatchesReferenceOnOddShapes)
{
    Rng rng(22);
    for (const Shape &s : kOddShapes) {
        const Matrix a = randomMatrix(s.m, s.k, rng);
        const Matrix b = randomMatrix(s.n, s.k, rng);  // transposed operand
        expectNear(matmulTransB(a, b), refMatmul(a, transpose(b)), 1e-4);
    }
}

TEST(MatKernels, MatmulTransAMatchesReferenceOnOddShapes)
{
    Rng rng(23);
    for (const Shape &s : kOddShapes) {
        const Matrix a = randomMatrix(s.k, s.m, rng);  // transposed operand
        const Matrix b = randomMatrix(s.k, s.n, rng);
        expectNear(matmulTransA(a, b), refMatmul(transpose(a), b), 1e-4);
    }
}

TEST(MatKernels, LinearForwardFusesBiasAndRelu)
{
    Rng rng(24);
    for (const Shape &s : kOddShapes) {
        const Matrix x = randomMatrix(s.m, s.k, rng);
        const Matrix w = randomMatrix(s.n, s.k, rng);
        std::vector<float> bias(s.n);
        for (auto &v : bias)
            v = static_cast<float>(rng.gaussian());

        Matrix want = refMatmul(x, transpose(w));
        for (std::size_t i = 0; i < want.rows(); ++i)
            for (std::size_t j = 0; j < want.cols(); ++j)
                want(i, j) += bias[j];

        Matrix plain;
        linearForwardInto(plain, x, w, bias, /*relu=*/false);
        expectNear(plain, want, 1e-4);

        for (std::size_t i = 0; i < want.size(); ++i)
            if (want.data()[i] < 0.0f)
                want.data()[i] = 0.0f;
        Matrix relu;
        linearForwardInto(relu, x, w, bias, /*relu=*/true);
        expectNear(relu, want, 1e-4);
    }
}

TEST(MatKernels, IntoVariantsReuseDestinationStorage)
{
    Rng rng(25);
    const Matrix a = randomMatrix(5, 12, rng);
    const Matrix b = randomMatrix(12, 9, rng);
    Matrix c(5, 9);  // pre-sized: resizeUninit must be a no-op
    const float *before = c.data();
    matmulInto(c, a, b);
    EXPECT_EQ(c.data(), before);
    expectNear(c, refMatmul(a, b), 1e-4);

    // Re-running into the same destination overwrites, not accumulates.
    matmulInto(c, a, b);
    expectNear(c, refMatmul(a, b), 1e-4);
}

/**
 * Row purity: computing a batch in two arbitrary row-splits must be
 * BITWISE identical to computing it whole. The double-buffered PPO
 * collector forwards stream groups separately and relies on this for
 * its off ≡ on reproducibility guarantee.
 */
TEST(MatKernels, LinearForwardIsRowPureUnderBatchSplits)
{
    Rng rng(26);
    const std::size_t k = 37, n = 11;
    const Matrix w = randomMatrix(n, k, rng);
    std::vector<float> bias(n);
    for (auto &v : bias)
        v = static_cast<float>(rng.gaussian());

    const Matrix x = randomMatrix(9, k, rng);
    Matrix full;
    linearForwardInto(full, x, w, bias, /*relu=*/true);

    for (std::size_t split = 1; split < x.rows(); ++split) {
        Matrix lo(split, k), hi(x.rows() - split, k);
        std::memcpy(lo.data(), x.data(), lo.size() * sizeof(float));
        std::memcpy(hi.data(), x.rowPtr(split), hi.size() * sizeof(float));
        Matrix ylo, yhi;
        linearForwardInto(ylo, lo, w, bias, /*relu=*/true);
        linearForwardInto(yhi, hi, w, bias, /*relu=*/true);
        EXPECT_EQ(0, std::memcmp(full.data(), ylo.data(),
                                 ylo.size() * sizeof(float)))
            << "split at " << split;
        EXPECT_EQ(0, std::memcmp(full.rowPtr(split), yhi.data(),
                                 yhi.size() * sizeof(float)))
            << "split at " << split;
    }
}

/** The same invariant end-to-end through the policy network. */
TEST(MatKernels, ActorCriticForwardNoGradIsRowPure)
{
    Rng rng(27);
    ActorCritic net(24, 6, 32, 2, rng);
    Rng orng(28);
    Matrix obs = randomMatrix(7, 24, orng);

    AcOutput full;
    net.forwardNoGrad(obs, full);

    const std::size_t split = 3;
    Matrix lo(split, 24), hi(obs.rows() - split, 24);
    std::memcpy(lo.data(), obs.data(), lo.size() * sizeof(float));
    std::memcpy(hi.data(), obs.rowPtr(split), hi.size() * sizeof(float));
    AcOutput out_lo, out_hi;
    net.forwardNoGrad(lo, out_lo);
    EXPECT_EQ(0, std::memcmp(full.logits.data(), out_lo.logits.data(),
                             out_lo.logits.size() * sizeof(float)));
    net.forwardNoGrad(hi, out_hi);
    EXPECT_EQ(0, std::memcmp(full.logits.rowPtr(split),
                             out_hi.logits.data(),
                             out_hi.logits.size() * sizeof(float)));
    for (std::size_t r = 0; r < split; ++r)
        EXPECT_EQ(full.values[r], out_lo.values[r]);
    for (std::size_t r = split; r < obs.rows(); ++r)
        EXPECT_EQ(full.values[r], out_hi.values[r - split]);
}

TEST(MatKernels, BackendNameIsReported)
{
    const std::string backend = matmulBackend();
    EXPECT_TRUE(backend == "avx2+fma" || backend == "portable");
}

} // namespace
} // namespace autocat
