/**
 * @file
 * VecEnv semantics and scenario-registry tests.
 *
 * The load-bearing guarantees: an N-stream VecEnv over seeds
 * {s..s+N-1} reproduces N sequential single-env runs bitwise;
 * ThreadedVecEnv is indistinguishable from SyncVecEnv; a stream
 * auto-resets and hands back the fresh observation on the step its
 * episode ends.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "env/batch_env_pool.hpp"
#include "env/env_registry.hpp"
#include "env/guessing_game.hpp"
#include "rl/vec_env.hpp"

namespace autocat {
namespace {

/**
 * Deterministic scripted environment: observation is
 * [100 * episode + step]; episodes last exactly 3 steps.
 */
class CountingEnv : public Environment
{
  public:
    std::size_t observationSize() const override { return 1; }
    std::size_t numActions() const override { return 2; }

    std::vector<float>
    reset() override
    {
        ++episode_;
        step_ = 0;
        return obs();
    }

    StepResult
    step(std::size_t action) override
    {
        ++step_;
        StepResult r;
        r.reward = static_cast<double>(action);
        r.done = step_ >= 3;
        r.obs = obs();
        return r;
    }

  private:
    std::vector<float>
    obs() const
    {
        return {static_cast<float>(100 * episode_ + step_)};
    }

    int episode_ = 0;
    int step_ = 0;
};

EnvConfig
tinyEnvConfig(std::uint64_t seed = 21)
{
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 2;
    cfg.cache.addressSpaceSize = 6;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 2;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    cfg.windowSize = 8;
    cfg.seed = seed;
    return cfg;
}

/** Trajectory record for bitwise comparison. */
struct Trace
{
    std::vector<float> obs;
    std::vector<double> rewards;
    std::vector<std::uint8_t> dones;
};

bool
operator==(const Trace &a, const Trace &b)
{
    return a.obs == b.obs && a.rewards == b.rewards && a.dones == b.dones;
}

/** Deterministic per-stream action schedule. */
std::size_t
scheduledAction(std::size_t stream, int t, std::size_t num_actions)
{
    return (stream * 7 + static_cast<std::size_t>(t) * 3) % num_actions;
}

/** Roll @p steps steps of one single env, with auto-reset, seed s. */
Trace
runSequential(std::uint64_t seed, std::size_t stream, int steps)
{
    auto env = makeEnv("guessing_game", tinyEnvConfig(seed));
    Trace trace;
    std::vector<float> obs = env->reset();
    for (int t = 0; t < steps; ++t) {
        StepResult sr =
            env->step(scheduledAction(stream, t, env->numActions()));
        trace.rewards.push_back(sr.reward);
        trace.dones.push_back(sr.done ? 1 : 0);
        const std::vector<float> next = sr.done ? env->reset() : sr.obs;
        trace.obs.insert(trace.obs.end(), next.begin(), next.end());
    }
    return trace;
}

/** Roll @p steps batched steps of one VecEnv, splitting per stream. */
std::vector<Trace>
runVectorized(VecEnv &vec, int steps)
{
    const std::size_t n = vec.numEnvs();
    const std::size_t dim = vec.observationSize();
    std::vector<Trace> traces(n);
    vec.resetAll();
    std::vector<std::size_t> actions(n);
    for (int t = 0; t < steps; ++t) {
        for (std::size_t s = 0; s < n; ++s)
            actions[s] = scheduledAction(s, t, vec.numActions());
        const VecStepResult vr = vec.stepAll(actions);
        for (std::size_t s = 0; s < n; ++s) {
            traces[s].rewards.push_back(vr.rewards[s]);
            traces[s].dones.push_back(vr.dones[s]);
            traces[s].obs.insert(traces[s].obs.end(), vr.obs.rowPtr(s),
                                 vr.obs.rowPtr(s) + dim);
        }
    }
    return traces;
}

TEST(VecEnv, SyncMatchesSequentialRunsBitwise)
{
    constexpr std::uint64_t kBaseSeed = 21;
    constexpr std::size_t kStreams = 4;
    constexpr int kSteps = 200;

    auto vec =
        makeVecEnv("guessing_game", tinyEnvConfig(kBaseSeed), kStreams);
    const std::vector<Trace> vec_traces = runVectorized(*vec, kSteps);

    for (std::size_t s = 0; s < kStreams; ++s) {
        const Trace seq = runSequential(kBaseSeed + s, s, kSteps);
        EXPECT_TRUE(vec_traces[s] == seq)
            << "stream " << s << " diverged from the sequential run";
    }
}

TEST(VecEnv, ThreadedMatchesSyncBitwise)
{
    constexpr std::uint64_t kBaseSeed = 33;
    constexpr std::size_t kStreams = 4;
    constexpr int kSteps = 150;

    auto sync =
        makeVecEnv("guessing_game", tinyEnvConfig(kBaseSeed), kStreams,
                   /*threaded=*/false);
    auto threaded =
        makeVecEnv("guessing_game", tinyEnvConfig(kBaseSeed), kStreams,
                   /*threaded=*/true);

    const std::vector<Trace> a = runVectorized(*sync, kSteps);
    const std::vector<Trace> b = runVectorized(*threaded, kSteps);
    for (std::size_t s = 0; s < kStreams; ++s)
        EXPECT_TRUE(a[s] == b[s]) << "stream " << s;
}

TEST(VecEnv, AutoResetReturnsFreshObservation)
{
    std::vector<std::unique_ptr<Environment>> envs;
    envs.push_back(std::make_unique<CountingEnv>());
    envs.push_back(std::make_unique<CountingEnv>());
    SyncVecEnv vec(std::move(envs));

    const Matrix first = vec.resetAll();
    EXPECT_FLOAT_EQ(first(0, 0), 100.0f);  // episode 1, step 0

    // Episodes last 3 steps: the 3rd stepAll ends episode 1 and must
    // hand back episode 2's first observation in the same batch.
    VecStepResult vr = vec.stepAll({1, 0});
    EXPECT_EQ(vr.dones[0], 0);
    EXPECT_FLOAT_EQ(vr.obs(0, 0), 101.0f);
    vr = vec.stepAll({1, 0});
    vr = vec.stepAll({1, 0});
    EXPECT_EQ(vr.dones[0], 1);
    EXPECT_EQ(vr.dones[1], 1);
    EXPECT_FLOAT_EQ(vr.obs(0, 0), 200.0f);  // episode 2, step 0
    EXPECT_FLOAT_EQ(vr.obs(1, 0), 200.0f);
    EXPECT_DOUBLE_EQ(vr.rewards[0], 1.0);
    EXPECT_DOUBLE_EQ(vr.rewards[1], 0.0);

    // The stream keeps running in the new episode without reset().
    vr = vec.stepAll({0, 0});
    EXPECT_EQ(vr.dones[0], 0);
    EXPECT_FLOAT_EQ(vr.obs(0, 0), 201.0f);
}

TEST(VecEnv, ThreadedPropagatesEnvExceptions)
{
    struct ThrowingEnv : CountingEnv
    {
        StepResult
        step(std::size_t action) override
        {
            if (++calls >= 5)
                throw std::runtime_error("env blew up");
            return CountingEnv::step(action);
        }
        int calls = 0;
    };

    std::vector<std::unique_ptr<Environment>> envs;
    envs.push_back(std::make_unique<ThrowingEnv>());
    envs.push_back(std::make_unique<CountingEnv>());
    ThreadedVecEnv vec(std::move(envs));
    vec.resetAll();
    for (int t = 0; t < 4; ++t)
        vec.stepAll({0, 0});
    // The 5th step throws inside a worker; the exception must reach
    // the caller (same semantics as SyncVecEnv), not std::terminate.
    EXPECT_THROW(vec.stepAll({0, 0}), std::runtime_error);
}

TEST(VecEnv, RejectsMismatchedStreams)
{
    EnvConfig small = tinyEnvConfig();
    EnvConfig large = tinyEnvConfig();
    large.attackAddrE = 4;
    large.cache.addressSpaceSize = 8;

    std::vector<std::unique_ptr<Environment>> envs;
    envs.push_back(makeEnv("guessing_game", small));
    envs.push_back(makeEnv("guessing_game", large));
    EXPECT_THROW(SyncVecEnv{std::move(envs)}, std::invalid_argument);
}

TEST(Registry, BuiltinGuessingGameIsRegistered)
{
    EXPECT_TRUE(hasScenario("guessing_game"));
    const auto names = scenarioNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "guessing_game"),
              names.end());

    auto env = makeEnv("guessing_game", tinyEnvConfig());
    EXPECT_NE(dynamic_cast<CacheGuessingGame *>(env.get()), nullptr);
}

TEST(Registry, UnknownScenarioThrows)
{
    EXPECT_THROW(makeEnv("no_such_scenario", tinyEnvConfig()),
                 std::out_of_range);
}

TEST(Registry, HierarchyScenariosAreRegistered)
{
    for (const char *name :
         {"l1l2_private", "l1l2_shared", "l2_exclusive", "three_level"}) {
        EXPECT_TRUE(hasScenario(name)) << name;
    }
}

TEST(Registry, HierarchyScenariosBuildHierarchyBackedGames)
{
    const struct
    {
        const char *name;
        unsigned depth;
        InclusionPolicy outer;
        bool sharedL1;
    } expected[] = {
        {"l1l2_private", 2, InclusionPolicy::Inclusive, false},
        {"l1l2_shared", 2, InclusionPolicy::Inclusive, true},
        {"l2_exclusive", 2, InclusionPolicy::Exclusive, false},
        {"three_level", 3, InclusionPolicy::Inclusive, false},
    };

    for (const auto &e : expected) {
        auto env = makeEnv(e.name, tinyEnvConfig());
        auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
        ASSERT_NE(game, nullptr) << e.name;
        auto *hier = dynamic_cast<CacheHierarchy *>(&game->memory());
        ASSERT_NE(hier, nullptr) << e.name;
        EXPECT_EQ(hier->depth(), e.depth) << e.name;
        EXPECT_EQ(hier->config().levels.back().inclusion, e.outer)
            << e.name;
        EXPECT_EQ(hier->config().levels.front().shared, e.sharedL1)
            << e.name;
        // The outermost (attacked) level is the EnvConfig cache, so
        // window sizing keys off the same block count.
        EXPECT_EQ(hier->numBlocks(), tinyEnvConfig().cache.numBlocks())
            << e.name;
    }
}

TEST(Registry, HierarchyScenarioRespectsExplicitLevels)
{
    EnvConfig cfg = tinyEnvConfig();
    CacheConfig lvl;
    lvl.numSets = 2;
    lvl.numWays = 2;
    lvl.addressSpaceSize = 16;
    cfg.hierarchy = HierarchyConfig::twoLevel(lvl, lvl,
                                              InclusionPolicy::Nine);
    auto env = makeEnv("l1l2_private", cfg);
    auto *game = dynamic_cast<CacheGuessingGame *>(env.get());
    ASSERT_NE(game, nullptr);
    auto *hier = dynamic_cast<CacheHierarchy *>(&game->memory());
    ASSERT_NE(hier, nullptr);
    EXPECT_EQ(hier->config().levels.back().inclusion,
              InclusionPolicy::Nine);
    EXPECT_EQ(hier->config().levels.back().cache.numSets, 2u);
}

TEST(Registry, HierarchyScenariosWorkThroughMakeVecEnv)
{
    auto vec = makeVecEnv("l1l2_private", tinyEnvConfig(), 2);
    const Matrix obs = vec->resetAll();
    EXPECT_EQ(obs.rows(), 2u);
    const VecStepResult r = vec->stepAll({0, 0});
    EXPECT_EQ(r.obs.rows(), 2u);
}

/**
 * stepRange edge cases on either adapter: an empty range is a no-op
 * (no env stepped, no output slot touched), a single-stream range
 * advances exactly that stream, and the full range reproduces
 * stepAll() bitwise. Complements the mid-batch split coverage in
 * test_double_buffer.cpp.
 */
template <typename Adapter>
void
runStepRangeEdgeCases()
{
    constexpr std::size_t kStreams = 4;
    const auto make = [] {
        std::vector<std::unique_ptr<Environment>> envs;
        for (std::size_t i = 0; i < kStreams; ++i)
            envs.push_back(std::make_unique<CountingEnv>());
        return std::make_unique<Adapter>(std::move(envs));
    };
    const auto sentinel_out = [](VecEnv &vec) {
        VecStepResult out;
        out.obs.resize(kStreams, vec.observationSize());
        for (std::size_t i = 0; i < out.obs.size(); ++i)
            out.obs.data()[i] = -5.0f;
        out.rewards.assign(kStreams, -123.0);
        out.dones.assign(kStreams, 77);
        out.infos.assign(kStreams, StepInfo{});
        return out;
    };
    const std::vector<std::size_t> actions{1, 0, 1, 0};

    // Empty ranges — start, middle, end — must not step any stream or
    // touch any output slot.
    {
        auto vec = make();
        vec->resetAll();
        VecStepResult out = sentinel_out(*vec);
        for (const std::size_t at : {std::size_t{0}, std::size_t{2},
                                     kStreams}) {
            vec->stepRange(at, at, actions, out);
        }
        for (std::size_t s = 0; s < kStreams; ++s) {
            EXPECT_DOUBLE_EQ(out.rewards[s], -123.0) << s;
            EXPECT_EQ(out.dones[s], 77) << s;
            EXPECT_FLOAT_EQ(out.obs(s, 0), -5.0f) << s;
        }
        // No stream advanced: the next stepAll is the episodes' first
        // step (CountingEnv observations are 100*episode + step).
        const VecStepResult step = vec->stepAll(actions);
        for (std::size_t s = 0; s < kStreams; ++s)
            EXPECT_FLOAT_EQ(step.obs(s, 0), 101.0f) << s;
    }

    // Single-stream range: exactly that stream advances.
    {
        auto vec = make();
        vec->resetAll();
        VecStepResult out = sentinel_out(*vec);
        vec->stepRange(2, 3, actions, out);
        EXPECT_DOUBLE_EQ(out.rewards[2], 1.0);
        EXPECT_EQ(out.dones[2], 0);
        EXPECT_FLOAT_EQ(out.obs(2, 0), 101.0f);
        for (const std::size_t s : {std::size_t{0}, std::size_t{1},
                                    std::size_t{3}}) {
            EXPECT_DOUBLE_EQ(out.rewards[s], -123.0) << s;
            EXPECT_EQ(out.dones[s], 77) << s;
        }
        // Stream 2 is now one step ahead of the others.
        const VecStepResult step = vec->stepAll(actions);
        EXPECT_FLOAT_EQ(step.obs(2, 0), 102.0f);
        EXPECT_FLOAT_EQ(step.obs(0, 0), 101.0f);
    }

    // Full range == stepAll, bitwise, including across an auto-reset
    // boundary (episodes last 3 steps).
    {
        auto range_vec = make();
        auto full_vec = make();
        range_vec->resetAll();
        full_vec->resetAll();
        for (int t = 0; t < 4; ++t) {
            VecStepResult out = sentinel_out(*range_vec);
            range_vec->stepRange(0, kStreams, actions, out);
            const VecStepResult want = full_vec->stepAll(actions);
            for (std::size_t s = 0; s < kStreams; ++s) {
                EXPECT_DOUBLE_EQ(out.rewards[s], want.rewards[s])
                    << "t=" << t << " s=" << s;
                EXPECT_EQ(out.dones[s], want.dones[s]);
                EXPECT_FLOAT_EQ(out.obs(s, 0), want.obs(s, 0));
            }
        }
    }
}

TEST(VecEnvStepRange, EdgeCasesOnSyncAdapter)
{
    runStepRangeEdgeCases<SyncVecEnv>();
}

TEST(VecEnvStepRange, EdgeCasesOnThreadedAdapter)
{
    runStepRangeEdgeCases<ThreadedVecEnv>();
}

TEST(VecEnvStepRange, EdgeCasesOnBatchAdapter)
{
    // CountingEnv is not a CacheGuessingGame, so this also pins the
    // pool's generic (non-devirtualized) fallback path.
    runStepRangeEdgeCases<BatchVecEnv>();
}

TEST(VecEnv, BatchMatchesSequentialRunsBitwise)
{
    constexpr std::uint64_t kBaseSeed = 27;
    constexpr std::size_t kStreams = 4;
    constexpr int kSteps = 200;

    auto vec = makeVecEnv("guessing_game", tinyEnvConfig(kBaseSeed),
                          kStreams, VecEnvKind::Batch);
    EXPECT_NE(vec->batchSurface(), nullptr);
    const std::vector<Trace> vec_traces = runVectorized(*vec, kSteps);

    for (std::size_t s = 0; s < kStreams; ++s) {
        const Trace seq = runSequential(kBaseSeed + s, s, kSteps);
        EXPECT_TRUE(vec_traces[s] == seq)
            << "stream " << s << " diverged from the sequential run";
    }
}

TEST(Registry, CustomScenarioPlugsIn)
{
    struct SeedProbe : CountingEnv
    {
        explicit SeedProbe(std::uint64_t seed) : seed(seed) {}
        std::uint64_t seed;
    };

    const bool fresh = registerScenario(
        "test_counting",
        [](const ScenarioContext &ctx, std::unique_ptr<MemorySystem>) {
            return std::make_unique<SeedProbe>(ctx.env.seed);
        });
    EXPECT_TRUE(fresh);
    EXPECT_TRUE(hasScenario("test_counting"));

    // makeVecEnv seeds stream i with config.seed + i.
    EnvConfig cfg = tinyEnvConfig(/*seed=*/40);
    auto vec = makeVecEnv("test_counting", cfg, 3);
    for (std::size_t i = 0; i < 3; ++i) {
        auto *probe = dynamic_cast<SeedProbe *>(&vec->env(i));
        ASSERT_NE(probe, nullptr);
        EXPECT_EQ(probe->seed, 40u + i);
    }
}

} // namespace
} // namespace autocat
