/**
 * @file
 * Prefetcher unit tests and the accessFast fallback contract.
 *
 * The prefetchers (cache/prefetcher.hpp) are now an attacked resource
 * in their own right (the prefetch_probe channel leaks the victim's
 * stride through them), so their stream-detection behavior is pinned
 * here exactly: what triggers a prefetch, what breaks a stream, how
 * the address space wraps.
 *
 * The second half pins the contract the batch engine's devirtualized
 * hot path relies on: Cache::accessFast must fall back to the full
 * access() machinery whenever a listener or an internal prefetcher is
 * attached, so the lean path can never skip prefetch issue or event
 * emission. That is checked differentially — a cache driven through
 * accessFast must end every step bitwise-equivalent (same hit
 * observables, same residency) to a twin driven through access().
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "cache/prefetcher.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

// ------------------------------------------------------ unit: nextline

TEST(NextLinePrefetcher, PrefetchesSuccessorOnEveryAccess)
{
    NextLinePrefetcher pf(8);
    EXPECT_EQ(pf.onDemandAccess(0, false),
              std::vector<std::uint64_t>{1});
    EXPECT_EQ(pf.onDemandAccess(3, true), std::vector<std::uint64_t>{4});
    // Hit or miss makes no difference; the successor always comes.
    EXPECT_EQ(pf.onDemandAccess(3, false),
              std::vector<std::uint64_t>{4});
}

TEST(NextLinePrefetcher, WrapsAtAddressSpaceEnd)
{
    NextLinePrefetcher pf(8);
    EXPECT_EQ(pf.onDemandAccess(7, false),
              std::vector<std::uint64_t>{0});
}

// -------------------------------------------------------- unit: stream

TEST(StreamPrefetcher, TwoEqualStridesLockOn)
{
    StreamPrefetcher pf(64);
    EXPECT_TRUE(pf.onDemandAccess(10, false).empty());  // first touch
    EXPECT_TRUE(pf.onDemandAccess(13, false).empty());  // one stride
    // Second consecutive stride of +3: prefetch a+3s = 19.
    EXPECT_EQ(pf.onDemandAccess(16, false),
              std::vector<std::uint64_t>{19});
    // The stream keeps running ahead while the stride holds.
    EXPECT_EQ(pf.onDemandAccess(19, false),
              std::vector<std::uint64_t>{22});
}

TEST(StreamPrefetcher, UnitStrideAndWrap)
{
    StreamPrefetcher pf(8);
    EXPECT_TRUE(pf.onDemandAccess(5, false).empty());
    EXPECT_TRUE(pf.onDemandAccess(6, false).empty());
    EXPECT_EQ(pf.onDemandAccess(7, false),
              std::vector<std::uint64_t>{0});
}

TEST(StreamPrefetcher, StrideChangeBreaksTheStream)
{
    StreamPrefetcher pf(64);
    pf.onDemandAccess(0, false);
    pf.onDemandAccess(2, false);
    EXPECT_EQ(pf.onDemandAccess(4, false),
              std::vector<std::uint64_t>{6});
    // Stride changes 2 -> 3: no prefetch until the new stride repeats.
    EXPECT_TRUE(pf.onDemandAccess(7, false).empty());
    EXPECT_EQ(pf.onDemandAccess(10, false),
              std::vector<std::uint64_t>{13});
}

TEST(StreamPrefetcher, ZeroStrideNeverPrefetches)
{
    StreamPrefetcher pf(64);
    pf.onDemandAccess(5, false);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(pf.onDemandAccess(5, false).empty());
}

TEST(StreamPrefetcher, ResetForgetsTheStream)
{
    StreamPrefetcher pf(64);
    pf.onDemandAccess(0, false);
    pf.onDemandAccess(1, false);
    pf.reset();
    // History gone: two fresh accesses re-establish before issuing.
    EXPECT_TRUE(pf.onDemandAccess(2, false).empty());
    EXPECT_TRUE(pf.onDemandAccess(3, false).empty());
    EXPECT_EQ(pf.onDemandAccess(4, false),
              std::vector<std::uint64_t>{5});
}

TEST(PrefetcherFactory, KindsMapToImplementations)
{
    EXPECT_EQ(makePrefetcher(PrefetcherKind::None, 8), nullptr);
    EXPECT_NE(makePrefetcher(PrefetcherKind::NextLine, 8), nullptr);
    EXPECT_NE(makePrefetcher(PrefetcherKind::Stream, 8), nullptr);
}

// ------------------------------------- the accessFast fallback contract

CacheConfig
probeCacheConfig(PrefetcherKind kind)
{
    CacheConfig cfg;
    cfg.numSets = 2;
    cfg.numWays = 2;
    cfg.policy = ReplPolicy::Lru;
    cfg.prefetcher = kind;
    cfg.addressSpaceSize = 16;
    return cfg;
}

/**
 * Drive @p fast through accessFast and @p full through access with the
 * same seeded operation stream; every hit observable and the full
 * residency map must agree after every op. With a prefetcher attached
 * this only holds if accessFast takes the full path (the lean path
 * would skip prefetch issue and the twins would diverge within a few
 * operations).
 */
void
runFastVsFull(PrefetcherKind kind, std::uint64_t seed)
{
    const CacheConfig cfg = probeCacheConfig(kind);
    Cache fast(cfg);
    Cache full(cfg);

    Rng rng(seed);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t addr = rng.uniformInt(cfg.addressSpaceSize);
        const Domain domain =
            rng.uniformInt(2) == 0 ? Domain::Attacker : Domain::Victim;
        if (rng.uniformInt(10) < 9) {
            ASSERT_EQ(fast.accessFast(addr, domain),
                      full.access(addr, domain).hit)
                << "prefetcher kind " << static_cast<int>(kind)
                << ": op " << i << " addr " << addr;
        } else {
            ASSERT_EQ(fast.flush(addr, domain), full.flush(addr, domain))
                << "op " << i << " flush " << addr;
        }
        for (std::uint64_t a = 0; a < cfg.addressSpaceSize; ++a) {
            ASSERT_EQ(fast.contains(a), full.contains(a))
                << "prefetcher kind " << static_cast<int>(kind)
                << ": residency of " << a << " after op " << i;
        }
    }
}

TEST(AccessFastContract, MatchesFullPathWithoutPrefetcher)
{
    runFastVsFull(PrefetcherKind::None, 11);
}

TEST(AccessFastContract, MatchesFullPathWithNextLinePrefetcher)
{
    runFastVsFull(PrefetcherKind::NextLine, 22);
}

TEST(AccessFastContract, MatchesFullPathWithStreamPrefetcher)
{
    runFastVsFull(PrefetcherKind::Stream, 33);
}

TEST(AccessFastContract, EngagesEventMachineryWhenListenerAttached)
{
    // A listener alone (no prefetcher) must also force the full path:
    // the lean path emits no events, so a silent lean accessFast would
    // show up here as a missing DemandAccess.
    Cache cache(probeCacheConfig(PrefetcherKind::None));
    std::vector<CacheEvent> events;
    cache.setEventListener(
        [&events](const CacheEvent &ev) { events.push_back(ev); });

    ASSERT_FALSE(cache.accessFast(3, Domain::Attacker));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].op, CacheOp::DemandAccess);
    EXPECT_EQ(events[0].addr, 3u);
    EXPECT_FALSE(events[0].hit);

    ASSERT_TRUE(cache.accessFast(3, Domain::Attacker));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_TRUE(events[1].hit);
}

TEST(AccessFastContract, PrefetchInstallsAreTaggedAndVisible)
{
    // The internal stream prefetcher's installs surface as
    // CacheOp::Prefetch events through the demand entry points.
    Cache cache(probeCacheConfig(PrefetcherKind::Stream));
    std::vector<CacheEvent> events;
    cache.setEventListener(
        [&events](const CacheEvent &ev) { events.push_back(ev); });

    cache.accessFast(0, Domain::Victim);
    cache.accessFast(1, Domain::Victim);
    cache.accessFast(2, Domain::Victim);  // locks stride 1, prefetches 3

    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[3].op, CacheOp::Prefetch);
    EXPECT_EQ(events[3].addr, 3u);
    EXPECT_TRUE(cache.contains(3));
}

TEST(AccessFastContract, ExternalPrefetchInstallMatchesInternal)
{
    // prefetchInstall() (the prefetch_probe channel's feeder) must
    // leave the cache in the same state as the internal prefetcher's
    // own install for the same target.
    Cache internal(probeCacheConfig(PrefetcherKind::Stream));
    Cache external(probeCacheConfig(PrefetcherKind::None));
    StreamPrefetcher pf(16);

    for (std::uint64_t addr = 0; addr < 3; ++addr) {
        internal.accessFast(addr, Domain::Victim);
        const bool hit = external.accessFast(addr, Domain::Victim);
        for (std::uint64_t target : pf.onDemandAccess(addr, hit)) {
            if (target != addr)
                external.prefetchInstall(target, Domain::Victim);
        }
    }
    for (std::uint64_t a = 0; a < 16; ++a)
        ASSERT_EQ(internal.contains(a), external.contains(a))
            << "residency of " << a;
}

} // namespace
} // namespace autocat
