/**
 * @file
 * Unit and property tests for the replacement policies over the
 * flattened ReplacementState: exact LRU semantics, PLRU tree behavior,
 * SRRIP aging, random-policy bounds, per-set metadata independence,
 * and cross-policy invariants (victim validity, lock respect).
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

std::vector<std::uint8_t>
allTrue(unsigned n)
{
    return std::vector<std::uint8_t>(n, 1);
}

std::vector<std::uint8_t>
allFalse(unsigned n)
{
    return std::vector<std::uint8_t>(n, 0);
}

/** One-set state of @p ways ways (the common test shape). */
ReplacementState
oneSet(ReplPolicy policy, unsigned ways, Rng *rng = nullptr)
{
    return ReplacementState(policy, 1, ways, rng);
}

int
victim(ReplacementState &state, const std::vector<std::uint8_t> &valid,
       const std::vector<std::uint8_t> &locked, std::uint64_t set = 0)
{
    return state.victimWay(set, valid.data(), locked.data());
}

TEST(ReplPolicyNames, RoundTrip)
{
    for (auto p : {ReplPolicy::Lru, ReplPolicy::TreePlru, ReplPolicy::Rrip,
                   ReplPolicy::Random}) {
        EXPECT_EQ(replPolicyFromString(replPolicyName(p)), p);
    }
    EXPECT_THROW(replPolicyFromString("nonsense"), std::invalid_argument);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    ReplacementState lru = oneSet(ReplPolicy::Lru, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(0, w);
    // Way 0 is oldest.
    EXPECT_EQ(victim(lru, allTrue(4), allFalse(4)), 0);
    lru.onHit(0, 0);  // promote 0; now way 1 is oldest
    EXPECT_EQ(victim(lru, allTrue(4), allFalse(4)), 1);
}

TEST(Lru, HitPromotionIsExact)
{
    ReplacementState lru = oneSet(ReplPolicy::Lru, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(0, w);
    lru.onHit(0, 1);
    lru.onHit(0, 0);
    // Ages oldest -> newest now: 2, 3, 1, 0.
    EXPECT_EQ(victim(lru, allTrue(4), allFalse(4)), 2);
    lru.onHit(0, 2);
    EXPECT_EQ(victim(lru, allTrue(4), allFalse(4)), 3);
}

TEST(Lru, RespectsLocks)
{
    ReplacementState lru = oneSet(ReplPolicy::Lru, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(0, w);
    auto locked = allFalse(4);
    locked[0] = 1;  // the LRU way is locked
    EXPECT_EQ(victim(lru, allTrue(4), locked), 1);
}

TEST(Lru, AllLockedReturnsMinusOne)
{
    ReplacementState lru = oneSet(ReplPolicy::Lru, 2);
    lru.onFill(0, 0);
    lru.onFill(0, 1);
    EXPECT_EQ(victim(lru, allTrue(2), allTrue(2)), -1);
}

TEST(Lru, InvalidateMakesWayOldest)
{
    ReplacementState lru = oneSet(ReplPolicy::Lru, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(0, w);
    lru.onInvalidate(0, 3);  // newest way invalidated
    // Among the remaining, way 3 should be preferred victim.
    EXPECT_EQ(victim(lru, allTrue(4), allFalse(4)), 3);
}

TEST(Lru, SnapshotReflectsAges)
{
    ReplacementState lru = oneSet(ReplPolicy::Lru, 3);
    lru.onFill(0, 0);
    lru.onFill(0, 1);
    lru.onFill(0, 2);
    const auto ages = lru.stateSnapshot(0);
    EXPECT_EQ(ages[2], 0u);  // most recent
    EXPECT_EQ(ages[0], 2u);  // oldest
}

TEST(Lru, SetsAgeIndependently)
{
    // Metadata is one flat array, but each set's slice is isolated.
    ReplacementState lru(ReplPolicy::Lru, 2, 4, nullptr);
    for (unsigned w = 0; w < 4; ++w) {
        lru.onFill(0, w);
        lru.onFill(1, w);
    }
    lru.onHit(0, 0);  // promotes way 0 of set 0 only
    EXPECT_EQ(victim(lru, allTrue(4), allFalse(4), 0), 1);
    EXPECT_EQ(victim(lru, allTrue(4), allFalse(4), 1), 0);
}

TEST(Plru, RequiresPowerOfTwo)
{
    EXPECT_THROW(oneSet(ReplPolicy::TreePlru, 3), std::invalid_argument);
    EXPECT_NO_THROW(oneSet(ReplPolicy::TreePlru, 8));
}

TEST(Plru, VictimIsNeverTheJustTouchedWay)
{
    ReplacementState plru = oneSet(ReplPolicy::TreePlru, 8);
    for (unsigned w = 0; w < 8; ++w)
        plru.onFill(0, w);
    for (unsigned w = 0; w < 8; ++w) {
        plru.onHit(0, w);
        EXPECT_NE(victim(plru, allTrue(8), allFalse(8)),
                  static_cast<int>(w));
    }
}

TEST(Plru, FillsInSequenceThenEvictsFirst)
{
    ReplacementState plru = oneSet(ReplPolicy::TreePlru, 4);
    for (unsigned w = 0; w < 4; ++w)
        plru.onFill(0, w);
    // After touching 0..3 in order, the tree points back at way 0.
    EXPECT_EQ(victim(plru, allTrue(4), allFalse(4)), 0);
}

TEST(Plru, ApproximatesLruOnSequentialTouch)
{
    // Tree-PLRU and true LRU agree on a strict sequential pattern.
    ReplacementState plru = oneSet(ReplPolicy::TreePlru, 8);
    ReplacementState lru = oneSet(ReplPolicy::Lru, 8);
    for (unsigned w = 0; w < 8; ++w) {
        plru.onFill(0, w);
        lru.onFill(0, w);
    }
    EXPECT_EQ(victim(plru, allTrue(8), allFalse(8)),
              victim(lru, allTrue(8), allFalse(8)));
}

TEST(Plru, LockedVictimFallsBackToUnlockedWay)
{
    ReplacementState plru = oneSet(ReplPolicy::TreePlru, 4);
    for (unsigned w = 0; w < 4; ++w)
        plru.onFill(0, w);
    auto locked = allFalse(4);
    locked[0] = 1;
    const int v = victim(plru, allTrue(4), locked);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
}

TEST(Rrip, InsertAtTwoPromoteToZero)
{
    ReplacementState rrip = oneSet(ReplPolicy::Rrip, 4);
    rrip.onFill(0, 0);
    EXPECT_EQ(rrip.stateSnapshot(0)[0], ReplacementState::rripInsert);
    rrip.onHit(0, 0);
    EXPECT_EQ(rrip.stateSnapshot(0)[0], 0u);
}

TEST(Rrip, EvictsHighestRrpvAfterAging)
{
    ReplacementState rrip = oneSet(ReplPolicy::Rrip, 4);
    for (unsigned w = 0; w < 4; ++w)
        rrip.onFill(0, w);  // all at RRPV=2
    rrip.onHit(0, 1);       // way 1 at RRPV=0
    const int v = victim(rrip, allTrue(4), allFalse(4));
    EXPECT_NE(v, 1);
    // Aging happened: some way must now be at max.
    EXPECT_EQ(rrip.stateSnapshot(0)[v], ReplacementState::rripMax);
}

TEST(Rrip, HitProtectsAgainstOneEvictionRound)
{
    ReplacementState rrip = oneSet(ReplPolicy::Rrip, 2);
    rrip.onFill(0, 0);
    rrip.onFill(0, 1);
    rrip.onHit(0, 0);
    EXPECT_EQ(victim(rrip, allTrue(2), allFalse(2)), 1);
}

TEST(Rrip, InvalidateSetsMaxRrpv)
{
    ReplacementState rrip = oneSet(ReplPolicy::Rrip, 2);
    rrip.onFill(0, 0);
    rrip.onFill(0, 1);
    rrip.onInvalidate(0, 0);
    EXPECT_EQ(rrip.stateSnapshot(0)[0], ReplacementState::rripMax);
}

TEST(RandomPolicy, RequiresRng)
{
    EXPECT_THROW(oneSet(ReplPolicy::Random, 4, nullptr),
                 std::invalid_argument);
}

TEST(RandomPolicy, VictimIsAlwaysValidUnlocked)
{
    Rng rng(5);
    ReplacementState rp = oneSet(ReplPolicy::Random, 8, &rng);
    const auto valid = allTrue(8);
    auto locked = allFalse(8);
    locked[2] = locked[5] = 1;
    for (int i = 0; i < 500; ++i) {
        const int v = victim(rp, valid, locked);
        ASSERT_GE(v, 0);
        EXPECT_TRUE(valid[v]);
        EXPECT_FALSE(locked[v]);
    }
}

TEST(RandomPolicy, CoversAllCandidates)
{
    Rng rng(6);
    ReplacementState rp = oneSet(ReplPolicy::Random, 4, &rng);
    std::set<int> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(victim(rp, allTrue(4), allFalse(4)));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(ReplacementState, RejectsOversizedAssociativity)
{
    // Metadata entries are 8-bit; the constructor enforces the bound.
    EXPECT_THROW(ReplacementState(ReplPolicy::Lru, 1, 300, nullptr),
                 std::invalid_argument);
}

// Cross-policy invariants.
class PolicyInvariants : public ::testing::TestWithParam<ReplPolicy>
{
  protected:
    Rng rng_{42};
};

TEST_P(PolicyInvariants, VictimAlwaysValidAndUnlocked)
{
    ReplacementState state = oneSet(GetParam(), 8, &rng_);
    for (unsigned w = 0; w < 8; ++w)
        state.onFill(0, w);

    Rng stim(17);
    const auto valid = allTrue(8);
    for (int step = 0; step < 2000; ++step) {
        std::vector<std::uint8_t> locked(8, 0);
        const unsigned nlock = stim.uniformInt(8);
        for (unsigned i = 0; i < nlock; ++i)
            locked[stim.uniformInt(8)] = 1;

        const int v = victim(state, valid, locked);
        bool any_unlocked = false;
        for (unsigned w = 0; w < 8; ++w)
            any_unlocked |= !locked[w];
        if (any_unlocked) {
            ASSERT_GE(v, 0);
            EXPECT_FALSE(locked[v]);
        } else {
            EXPECT_EQ(v, -1);
        }

        // Random touch keeps the metadata churning.
        if (stim.bernoulli(0.5))
            state.onHit(0, stim.uniformInt(8));
        else
            state.onFill(0, stim.uniformInt(8));
    }
}

TEST_P(PolicyInvariants, ResetIsReproducible)
{
    ReplacementState s1 = oneSet(GetParam(), 4, &rng_);
    ReplacementState s2 = oneSet(GetParam(), 4, &rng_);
    for (unsigned w = 0; w < 4; ++w) {
        s1.onFill(0, w);
        s2.onFill(0, w);
    }
    s1.onHit(0, 2);
    s1.reset();
    for (unsigned w = 0; w < 4; ++w)
        s1.onFill(0, w);
    EXPECT_EQ(s1.stateSnapshot(0), s2.stateSnapshot(0));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariants,
                         ::testing::Values(ReplPolicy::Lru,
                                           ReplPolicy::TreePlru,
                                           ReplPolicy::Rrip,
                                           ReplPolicy::Random));

} // namespace
} // namespace autocat
