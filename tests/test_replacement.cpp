/**
 * @file
 * Unit and property tests for the replacement policies: exact LRU
 * semantics, PLRU tree behavior, SRRIP aging, random-policy bounds,
 * and cross-policy invariants (victim validity, lock respect).
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

std::vector<bool>
allTrue(unsigned n)
{
    return std::vector<bool>(n, true);
}

std::vector<bool>
allFalse(unsigned n)
{
    return std::vector<bool>(n, false);
}

TEST(ReplPolicyNames, RoundTrip)
{
    for (auto p : {ReplPolicy::Lru, ReplPolicy::TreePlru, ReplPolicy::Rrip,
                   ReplPolicy::Random}) {
        EXPECT_EQ(replPolicyFromString(replPolicyName(p)), p);
    }
    EXPECT_THROW(replPolicyFromString("nonsense"), std::invalid_argument);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruReplacement lru(4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(w);
    // Way 0 is oldest.
    EXPECT_EQ(lru.victimWay(allTrue(4), allFalse(4)), 0);
    lru.onHit(0);  // promote 0; now way 1 is oldest
    EXPECT_EQ(lru.victimWay(allTrue(4), allFalse(4)), 1);
}

TEST(Lru, HitPromotionIsExact)
{
    LruReplacement lru(4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(w);
    lru.onHit(1);
    lru.onHit(0);
    // Ages oldest -> newest now: 2, 3, 1, 0.
    EXPECT_EQ(lru.victimWay(allTrue(4), allFalse(4)), 2);
    lru.onHit(2);
    EXPECT_EQ(lru.victimWay(allTrue(4), allFalse(4)), 3);
}

TEST(Lru, RespectsLocks)
{
    LruReplacement lru(4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(w);
    std::vector<bool> locked = allFalse(4);
    locked[0] = true;  // the LRU way is locked
    EXPECT_EQ(lru.victimWay(allTrue(4), locked), 1);
}

TEST(Lru, AllLockedReturnsMinusOne)
{
    LruReplacement lru(2);
    lru.onFill(0);
    lru.onFill(1);
    EXPECT_EQ(lru.victimWay(allTrue(2), allTrue(2)), -1);
}

TEST(Lru, InvalidateMakesWayOldest)
{
    LruReplacement lru(4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(w);
    lru.onInvalidate(3);  // newest way invalidated
    // Among the remaining, way 3 should be preferred victim.
    EXPECT_EQ(lru.victimWay(allTrue(4), allFalse(4)), 3);
}

TEST(Lru, SnapshotReflectsAges)
{
    LruReplacement lru(3);
    lru.onFill(0);
    lru.onFill(1);
    lru.onFill(2);
    const auto ages = lru.stateSnapshot();
    EXPECT_EQ(ages[2], 0u);  // most recent
    EXPECT_EQ(ages[0], 2u);  // oldest
}

TEST(Plru, RequiresPowerOfTwo)
{
    EXPECT_THROW(TreePlruReplacement(3), std::invalid_argument);
    EXPECT_NO_THROW(TreePlruReplacement(8));
}

TEST(Plru, VictimIsNeverTheJustTouchedWay)
{
    TreePlruReplacement plru(8);
    for (unsigned w = 0; w < 8; ++w)
        plru.onFill(w);
    for (unsigned w = 0; w < 8; ++w) {
        plru.onHit(w);
        EXPECT_NE(plru.victimWay(allTrue(8), allFalse(8)),
                  static_cast<int>(w));
    }
}

TEST(Plru, FillsInSequenceThenEvictsFirst)
{
    TreePlruReplacement plru(4);
    for (unsigned w = 0; w < 4; ++w)
        plru.onFill(w);
    // After touching 0..3 in order, the tree points back at way 0.
    EXPECT_EQ(plru.victimWay(allTrue(4), allFalse(4)), 0);
}

TEST(Plru, ApproximatesLruOnSequentialTouch)
{
    // Tree-PLRU and true LRU agree on a strict sequential pattern.
    TreePlruReplacement plru(8);
    LruReplacement lru(8);
    for (unsigned w = 0; w < 8; ++w) {
        plru.onFill(w);
        lru.onFill(w);
    }
    EXPECT_EQ(plru.victimWay(allTrue(8), allFalse(8)),
              lru.victimWay(allTrue(8), allFalse(8)));
}

TEST(Plru, LockedVictimFallsBackToUnlockedWay)
{
    TreePlruReplacement plru(4);
    for (unsigned w = 0; w < 4; ++w)
        plru.onFill(w);
    std::vector<bool> locked = allFalse(4);
    locked[0] = true;
    const int v = plru.victimWay(allTrue(4), locked);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
}

TEST(Rrip, InsertAtTwoPromoteToZero)
{
    RripReplacement rrip(4);
    rrip.onFill(0);
    EXPECT_EQ(rrip.stateSnapshot()[0], RripReplacement::insertRrpv);
    rrip.onHit(0);
    EXPECT_EQ(rrip.stateSnapshot()[0], 0u);
}

TEST(Rrip, EvictsHighestRrpvAfterAging)
{
    RripReplacement rrip(4);
    for (unsigned w = 0; w < 4; ++w)
        rrip.onFill(w);  // all at RRPV=2
    rrip.onHit(1);       // way 1 at RRPV=0
    const int victim = rrip.victimWay(allTrue(4), allFalse(4));
    EXPECT_NE(victim, 1);
    // Aging happened: some way must now be at max.
    EXPECT_EQ(rrip.stateSnapshot()[victim], RripReplacement::maxRrpv);
}

TEST(Rrip, HitProtectsAgainstOneEvictionRound)
{
    RripReplacement rrip(2);
    rrip.onFill(0);
    rrip.onFill(1);
    rrip.onHit(0);
    EXPECT_EQ(rrip.victimWay(allTrue(2), allFalse(2)), 1);
}

TEST(Rrip, InvalidateSetsMaxRrpv)
{
    RripReplacement rrip(2);
    rrip.onFill(0);
    rrip.onFill(1);
    rrip.onInvalidate(0);
    EXPECT_EQ(rrip.stateSnapshot()[0], RripReplacement::maxRrpv);
}

TEST(RandomPolicy, RequiresRng)
{
    EXPECT_THROW(makeReplacementPolicy(ReplPolicy::Random, 4, nullptr),
                 std::invalid_argument);
}

TEST(RandomPolicy, VictimIsAlwaysValidUnlocked)
{
    Rng rng(5);
    RandomReplacement rp(8, &rng);
    std::vector<bool> valid = allTrue(8);
    std::vector<bool> locked = allFalse(8);
    locked[2] = locked[5] = true;
    for (int i = 0; i < 500; ++i) {
        const int v = rp.victimWay(valid, locked);
        ASSERT_GE(v, 0);
        EXPECT_TRUE(valid[v]);
        EXPECT_FALSE(locked[v]);
    }
}

TEST(RandomPolicy, CoversAllCandidates)
{
    Rng rng(6);
    RandomReplacement rp(4, &rng);
    std::set<int> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(rp.victimWay(allTrue(4), allFalse(4)));
    EXPECT_EQ(seen.size(), 4u);
}

// Cross-policy invariants.
class PolicyInvariants : public ::testing::TestWithParam<ReplPolicy>
{
  protected:
    Rng rng_{42};
};

TEST_P(PolicyInvariants, VictimAlwaysValidAndUnlocked)
{
    auto policy = makeReplacementPolicy(GetParam(), 8, &rng_);
    for (unsigned w = 0; w < 8; ++w)
        policy->onFill(w);

    Rng stim(17);
    std::vector<bool> valid = allTrue(8);
    for (int step = 0; step < 2000; ++step) {
        std::vector<bool> locked(8, false);
        const unsigned nlock = stim.uniformInt(8);
        for (unsigned i = 0; i < nlock; ++i)
            locked[stim.uniformInt(8)] = true;

        const int v = policy->victimWay(valid, locked);
        bool any_unlocked = false;
        for (unsigned w = 0; w < 8; ++w)
            any_unlocked |= !locked[w];
        if (any_unlocked) {
            ASSERT_GE(v, 0);
            EXPECT_FALSE(locked[v]);
        } else {
            EXPECT_EQ(v, -1);
        }

        // Random touch keeps the metadata churning.
        if (stim.bernoulli(0.5))
            policy->onHit(stim.uniformInt(8));
        else
            policy->onFill(stim.uniformInt(8));
    }
}

TEST_P(PolicyInvariants, ResetIsReproducible)
{
    auto p1 = makeReplacementPolicy(GetParam(), 4, &rng_);
    auto p2 = makeReplacementPolicy(GetParam(), 4, &rng_);
    for (unsigned w = 0; w < 4; ++w) {
        p1->onFill(w);
        p2->onFill(w);
    }
    p1->onHit(2);
    p1->reset();
    for (unsigned w = 0; w < 4; ++w)
        p1->onFill(w);
    EXPECT_EQ(p1->stateSnapshot(), p2->stateSnapshot());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariants,
                         ::testing::Values(ReplPolicy::Lru,
                                           ReplPolicy::TreePlru,
                                           ReplPolicy::Rrip,
                                           ReplPolicy::Random));

} // namespace
} // namespace autocat
