/**
 * @file
 * Tests of the versioned PPO checkpoint format (rl/checkpoint.hpp):
 * round-trip fixed point, resume-vs-uninterrupted bitwise equality
 * under the campaign boundary protocol, and loud rejection of
 * corrupted / truncated / version-mismatched files.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/campaign.hpp"
#include "env/env_registry.hpp"
#include "rl/checkpoint.hpp"

namespace autocat {
namespace {

EnvConfig
tinyEnv(std::uint64_t seed = 11)
{
    EnvConfig cfg;
    cfg.cache.numSets = 1;
    cfg.cache.numWays = 2;
    cfg.cache.policy = ReplPolicy::Lru;
    cfg.cache.addressSpaceSize = 6;
    cfg.attackAddrS = 0;
    cfg.attackAddrE = 2;
    cfg.victimAddrS = 0;
    cfg.victimAddrE = 0;
    cfg.victimNoAccessEnable = true;
    cfg.windowSize = 8;
    cfg.randomInit = false;
    cfg.seed = seed;
    return cfg;
}

PpoConfig
tinyPpo()
{
    PpoConfig ppo;
    ppo.stepsPerEpoch = 200;
    ppo.minibatchSize = 64;
    ppo.hidden = 16;
    ppo.seed = 5;
    return ppo;
}

std::string
checkpointBytes(PpoTrainer &trainer)
{
    std::ostringstream oss(std::ios::binary);
    writePpoCheckpoint(oss, trainer);
    return oss.str();
}

TEST(Checkpoint, SaveLoadSaveIsAFixedPoint)
{
    auto vec_a = makeVecEnv("guessing_game", tinyEnv(), 2);
    PpoTrainer a(*vec_a, tinyPpo());
    a.runEpoch();
    a.runEpoch();
    const std::string first = checkpointBytes(a);

    auto vec_b = makeVecEnv("guessing_game", tinyEnv(), 2);
    PpoTrainer b(*vec_b, tinyPpo());
    std::istringstream in(first, std::ios::binary);
    readPpoCheckpoint(in, b);
    const std::string second = checkpointBytes(b);

    EXPECT_EQ(first, second);
    EXPECT_EQ(b.epochsCompleted(), a.epochsCompleted());
    EXPECT_EQ(b.totalEnvSteps(), a.totalEnvSteps());
    EXPECT_DOUBLE_EQ(b.config().entropyCoef, a.config().entropyCoef);
}

TEST(Checkpoint, ResumeMatchesUninterruptedBitwise)
{
    // Trainer A: 2 epochs, boundary sync, 2 more epochs.
    auto vec_a = makeVecEnv("guessing_game", tinyEnv(), 2);
    PpoTrainer a(*vec_a, tinyPpo());
    a.runEpoch();
    a.runEpoch();
    // Campaign boundary protocol: reseed every stream from the global
    // epoch, restart collection, then serialize.
    const auto boundary = [](VecEnv &vec, PpoTrainer &t,
                             std::uint64_t base_seed) {
        for (std::size_t i = 0; i < vec.numEnvs(); ++i)
            vec.env(i).reseed(checkpointBoundarySeed(
                base_seed + i, t.epochsCompleted()));
        t.restartCollection();
    };
    boundary(*vec_a, a, tinyEnv().seed);
    const std::string blob = checkpointBytes(a);
    a.runEpoch();
    a.runEpoch();

    // Trainer B: fresh everything, restore the boundary, same 2 epochs.
    auto vec_b = makeVecEnv("guessing_game", tinyEnv(), 2);
    PpoTrainer b(*vec_b, tinyPpo());
    std::istringstream in(blob, std::ios::binary);
    readPpoCheckpoint(in, b);
    boundary(*vec_b, b, tinyEnv().seed);
    b.runEpoch();
    b.runEpoch();

    EXPECT_EQ(checkpointBytes(a), checkpointBytes(b));
    EXPECT_EQ(a.totalEnvSteps(), b.totalEnvSteps());
}

TEST(Checkpoint, CorruptedPayloadIsRejected)
{
    auto vec = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer trainer(*vec, tinyPpo());
    trainer.runEpoch();
    std::string bytes = checkpointBytes(trainer);

    // Flip one payload byte (past the 20-byte header).
    std::string corrupt = bytes;
    corrupt[bytes.size() / 2] ^= 0x40;
    auto vec2 = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer fresh(*vec2, tinyPpo());
    std::istringstream in(corrupt, std::ios::binary);
    try {
        readPpoCheckpoint(in, fresh);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Checkpoint, WrongVersionIsRejected)
{
    auto vec = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer trainer(*vec, tinyPpo());
    std::string bytes = checkpointBytes(trainer);
    bytes[8] = char(0x7f);  // version field follows the 8-byte magic

    auto vec2 = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer fresh(*vec2, tinyPpo());
    std::istringstream in(bytes, std::ios::binary);
    try {
        readPpoCheckpoint(in, fresh);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Checkpoint, TruncatedFileIsRejected)
{
    auto vec = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer trainer(*vec, tinyPpo());
    const std::string bytes = checkpointBytes(trainer);

    auto vec2 = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer fresh(*vec2, tinyPpo());
    std::istringstream in(bytes.substr(0, bytes.size() / 3),
                          std::ios::binary);
    EXPECT_THROW(readPpoCheckpoint(in, fresh), std::runtime_error);
}

TEST(Checkpoint, BadMagicIsRejected)
{
    auto vec = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer fresh(*vec, tinyPpo());
    std::istringstream in(std::string("definitely not a checkpoint"),
                          std::ios::binary);
    try {
        readPpoCheckpoint(in, fresh);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
            << e.what();
    }
}

TEST(Checkpoint, NetworkShapeMismatchIsRejected)
{
    auto vec = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer trainer(*vec, tinyPpo());
    const std::string bytes = checkpointBytes(trainer);

    PpoConfig wider = tinyPpo();
    wider.hidden = 32;
    auto vec2 = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer fresh(*vec2, wider);
    std::istringstream in(bytes, std::ios::binary);
    try {
        readPpoCheckpoint(in, fresh);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("shape"), std::string::npos)
            << e.what();
    }
}

TEST(Checkpoint, FileRoundTripThroughDisk)
{
    const std::string path =
        ::testing::TempDir() + "autocat_ckpt_roundtrip.bin";
    auto vec = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer trainer(*vec, tinyPpo());
    trainer.runEpoch();
    savePpoCheckpoint(path, trainer);

    auto vec2 = makeVecEnv("guessing_game", tinyEnv(), 1);
    PpoTrainer fresh(*vec2, tinyPpo());
    loadPpoCheckpoint(path, fresh);
    EXPECT_EQ(checkpointBytes(trainer), checkpointBytes(fresh));
    std::remove(path.c_str());

    EXPECT_THROW(loadPpoCheckpoint("/nonexistent/dir/x.ckpt", fresh),
                 std::runtime_error);
}

} // namespace
} // namespace autocat
