/**
 * @file
 * Unit tests for the RL substrate: matrix ops, layer gradients
 * (checked against finite differences), Adam, GAE, the categorical
 * distribution math, and the search baselines.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rl/actor_critic.hpp"
#include "rl/adam.hpp"
#include "rl/mat.hpp"
#include "rl/nn.hpp"
#include "rl/rollout.hpp"
#include "rl/search.hpp"

namespace autocat {
namespace {

// --------------------------------------------------------------- mat --

TEST(Mat, MatmulMatchesHandComputation)
{
    Matrix a(2, 3), b(3, 2);
    float av[] = {1, 2, 3, 4, 5, 6};
    float bv[] = {7, 8, 9, 10, 11, 12};
    std::copy(av, av + 6, a.data());
    std::copy(bv, bv + 6, b.data());
    const Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(Mat, TransposedVariantsAgree)
{
    Rng rng(4);
    Matrix a(3, 4), b(4, 5);
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] = static_cast<float>(rng.gaussian());
    for (std::size_t i = 0; i < b.size(); ++i)
        b.data()[i] = static_cast<float>(rng.gaussian());

    // matmulTransB(a, b^T) == matmul(a, b)
    Matrix bt(5, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            bt(c, r) = b(r, c);
    const Matrix c1 = matmul(a, b);
    const Matrix c2 = matmulTransB(a, bt);
    ASSERT_EQ(c1.rows(), c2.rows());
    for (std::size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-4);

    // matmulTransA(a^T stored as a, b) == a^T b
    Matrix at(4, 3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            at(c, r) = a(r, c);
    const Matrix c3 = matmulTransA(a, Matrix(a));  // a^T a
    const Matrix c4 = matmul(at, a);
    for (std::size_t i = 0; i < c3.size(); ++i)
        EXPECT_NEAR(c3.data()[i], c4.data()[i], 1e-4);
}

TEST(Mat, AddRowVectorAndColSum)
{
    Matrix m(2, 3);
    addRowVector(m, {1.0f, 2.0f, 3.0f});
    EXPECT_FLOAT_EQ(m(1, 2), 3.0f);
    const auto sums = colSum(m);
    EXPECT_FLOAT_EQ(sums[0], 2.0f);
    EXPECT_FLOAT_EQ(sums[2], 6.0f);
}

// ---------------------------------------------------------- nn/layer --

TEST(Linear, ForwardComputesAffineMap)
{
    Rng rng(1);
    Linear lin(2, 1, rng);
    lin.weights()(0, 0) = 2.0f;
    lin.weights()(0, 1) = -1.0f;
    lin.bias()[0] = 0.5f;
    Matrix x(1, 2);
    x(0, 0) = 3.0f;
    x(0, 1) = 4.0f;
    const Matrix y = lin.forward(x);
    EXPECT_FLOAT_EQ(y(0, 0), 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(Linear, GradientsMatchFiniteDifferences)
{
    Rng rng(2);
    Linear lin(3, 2, rng);
    Matrix x(2, 3);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.gaussian());

    // Loss = sum(y); dL/dy = 1.
    auto loss = [&] {
        const Matrix y = lin.forward(x);
        float s = 0.0f;
        for (std::size_t i = 0; i < y.size(); ++i)
            s += y.data()[i];
        return s;
    };

    lin.zeroGrad();
    Matrix ones(2, 2);
    for (std::size_t i = 0; i < ones.size(); ++i)
        ones.data()[i] = 1.0f;
    const Matrix dx = lin.backward(ones, x);

    auto blocks = lin.paramBlocks();
    const float eps = 1e-3f;
    for (auto &blk : blocks) {
        for (std::size_t i = 0; i < blk.size; i += 2) {
            const float orig = blk.params[i];
            blk.params[i] = orig + eps;
            const float up = loss();
            blk.params[i] = orig - eps;
            const float down = loss();
            blk.params[i] = orig;
            EXPECT_NEAR(blk.grads[i], (up - down) / (2 * eps), 2e-2);
        }
    }

    // Input gradient: dL/dx = colsum of W.
    for (std::size_t c = 0; c < 3; ++c) {
        const float expect =
            lin.weights()(0, c) + lin.weights()(1, c);
        EXPECT_NEAR(dx(0, c), expect, 1e-4);
        EXPECT_NEAR(dx(1, c), expect, 1e-4);
    }
}

TEST(Mlp, GradientsMatchFiniteDifferences)
{
    Rng rng(3);
    Mlp mlp({4, 8, 3}, rng, /*activate_last=*/false);
    Matrix x(3, 4);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.gaussian());

    auto loss = [&] {
        Matrix y = mlp.forward(x);
        float s = 0.0f;
        for (std::size_t i = 0; i < y.size(); ++i)
            s += y.data()[i] * y.data()[i];
        return 0.5f * s;
    };

    mlp.zeroGrad();
    Matrix y = mlp.forward(x);
    mlp.backward(y);  // dL/dy = y for the squared loss

    auto blocks = mlp.paramBlocks();
    const float eps = 1e-2f;
    int checked = 0;
    for (auto &blk : blocks) {
        for (std::size_t i = 0; i < blk.size; i += 7) {
            const float orig = blk.params[i];
            blk.params[i] = orig + eps;
            const float up = loss();
            blk.params[i] = orig - eps;
            const float down = loss();
            blk.params[i] = orig;
            const float fd = (up - down) / (2 * eps);
            EXPECT_NEAR(blk.grads[i], fd,
                        2e-2 + 0.05 * std::abs(fd));
            ++checked;
        }
    }
    EXPECT_GT(checked, 10);
}

TEST(Nn, ReluBackwardMasksNegativePreactivations)
{
    Matrix grad(1, 3), pre(1, 3);
    grad(0, 0) = grad(0, 1) = grad(0, 2) = 1.0f;
    pre(0, 0) = -1.0f;
    pre(0, 1) = 0.0f;
    pre(0, 2) = 2.0f;
    reluBackwardInPlace(grad, pre);
    EXPECT_FLOAT_EQ(grad(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(grad(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(grad(0, 2), 1.0f);
}

TEST(Nn, ClipGradNormScalesDown)
{
    std::vector<float> p(4, 0.0f), g{3.0f, 4.0f, 0.0f, 0.0f};
    std::vector<ParamBlock> blocks{{p.data(), g.data(), 4}};
    clipGradNorm(blocks, 1.0);
    EXPECT_NEAR(gradNorm(blocks), 1.0, 1e-5);
    EXPECT_NEAR(g[0] / g[1], 0.75, 1e-5);
}

TEST(Adam, MinimizesQuadratic)
{
    std::vector<float> p{5.0f, -3.0f};
    std::vector<float> g(2, 0.0f);
    std::vector<ParamBlock> blocks{{p.data(), g.data(), 2}};
    Adam adam(blocks, 0.1);
    for (int i = 0; i < 500; ++i) {
        g[0] = p[0];  // d/dp (p^2/2)
        g[1] = p[1];
        adam.step(blocks);
    }
    EXPECT_NEAR(p[0], 0.0, 1e-2);
    EXPECT_NEAR(p[1], 0.0, 1e-2);
}

// ------------------------------------------------------ actor-critic --

TEST(ActorCritic, SoftmaxLogProbEntropyConsistency)
{
    Matrix logits(1, 3);
    logits(0, 0) = 1.0f;
    logits(0, 1) = 2.0f;
    logits(0, 2) = 3.0f;

    const auto p = ActorCritic::softmaxRow(logits, 0);
    EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-9);
    EXPECT_GT(p[2], p[1]);

    for (std::size_t a = 0; a < 3; ++a) {
        EXPECT_NEAR(ActorCritic::logProb(logits, 0, a), std::log(p[a]),
                    1e-9);
    }

    double h = 0.0;
    for (double v : p)
        h -= v * std::log(v);
    EXPECT_NEAR(ActorCritic::entropy(logits, 0), h, 1e-9);
}

TEST(ActorCritic, UniformLogitsGiveMaxEntropy)
{
    Matrix logits(1, 4);
    EXPECT_NEAR(ActorCritic::entropy(logits, 0), std::log(4.0), 1e-9);
}

TEST(ActorCritic, SamplingFollowsDistribution)
{
    Rng rng(8);
    ActorCritic net(4, 2, 16, 1, rng);
    Matrix logits(1, 2);
    logits(0, 0) = 0.0f;
    logits(0, 1) = 2.0f;  // p1 ~ 0.88
    Rng srng(9);
    int ones = 0;
    for (int i = 0; i < 5000; ++i)
        ones += net.sample(logits, 0, srng) == 1 ? 1 : 0;
    EXPECT_NEAR(ones / 5000.0, 0.8808, 0.03);
}

TEST(ActorCritic, ForwardShapes)
{
    Rng rng(10);
    ActorCritic net(6, 5, 32, 2, rng);
    Matrix obs(7, 6);
    const AcOutput out = net.forward(obs);
    EXPECT_EQ(out.logits.rows(), 7u);
    EXPECT_EQ(out.logits.cols(), 5u);
    EXPECT_EQ(out.values.size(), 7u);
}

TEST(ActorCritic, PolicyHeadStartsNearUniform)
{
    Rng rng(11);
    ActorCritic net(8, 6, 32, 2, rng);
    std::vector<float> obs(8, 0.5f);
    const AcOutput out = net.forwardOne(obs);
    EXPECT_GT(ActorCritic::entropy(out.logits, 0),
              0.98 * std::log(6.0));
}

// ----------------------------------------------------------- rollout --

TEST(Rollout, GaeMatchesHandComputation)
{
    RolloutBuffer buf(3, 1);
    const std::vector<float> obs{0.0f};
    // Two-step episode then the start of another.
    buf.add(obs, 0, 1.0, false, 0.5, -0.1);
    buf.add(obs, 0, 2.0, true, 0.4, -0.1);
    buf.add(obs, 0, 0.0, false, 0.3, -0.1);
    const double gamma = 0.9, lambda = 0.8, boot = 0.7;
    buf.computeAdvantages(gamma, lambda, boot);

    // Backward by hand.
    const double d2 = 0.0 + gamma * boot - 0.3;
    const double a2 = d2;
    const double d1 = 2.0 + 0.0 - 0.4;  // done: next value masked
    const double a1 = d1;
    const double d0 = 1.0 + gamma * 0.4 - 0.5;
    const double a0 = d0 + gamma * lambda * a1;

    EXPECT_NEAR(buf.advantages()[0], a0, 1e-12);
    EXPECT_NEAR(buf.advantages()[1], a1, 1e-12);
    EXPECT_NEAR(buf.advantages()[2], a2, 1e-12);
    EXPECT_NEAR(buf.returns()[1], a1 + 0.4, 1e-12);
}

TEST(Rollout, NormalizeAdvantages)
{
    RolloutBuffer buf(4, 1);
    const std::vector<float> obs{0.0f};
    for (double r : {1.0, 2.0, 3.0, 4.0})
        buf.add(obs, 0, r, true, 0.0, 0.0);
    buf.computeAdvantages(1.0, 1.0, 0.0);
    buf.normalizeAdvantages();
    double m = 0.0;
    for (double a : buf.advantages())
        m += a;
    EXPECT_NEAR(m, 0.0, 1e-6);
}

TEST(Rollout, GatherObsSelectsRows)
{
    RolloutBuffer buf(3, 2);
    buf.add({1.0f, 2.0f}, 0, 0, false, 0, 0);
    buf.add({3.0f, 4.0f}, 0, 0, false, 0, 0);
    buf.add({5.0f, 6.0f}, 0, 0, false, 0, 0);
    const Matrix m = buf.gatherObs({2, 0});
    EXPECT_FLOAT_EQ(m(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(m(1, 1), 2.0f);
}

TEST(Rollout, MultiStreamGaeMatchesIndependentStreams)
{
    // Two interleaved streams must produce exactly the advantages of
    // two single-stream buffers: episode boundaries and bootstraps in
    // one stream may not leak into the other.
    const double gamma = 0.9, lambda = 0.8;
    RolloutBuffer s0(3, 1), s1(3, 1);
    s0.add({0.0f}, 0, 1.0, false, 0.5, -0.1);
    s0.add({0.0f}, 0, 2.0, true, 0.4, -0.1);
    s0.add({0.0f}, 0, 0.5, false, 0.3, -0.1);
    s1.add({1.0f}, 1, -1.0, false, 0.2, -0.2);
    s1.add({1.0f}, 1, 0.0, false, 0.1, -0.2);
    s1.add({1.0f}, 1, 3.0, true, 0.6, -0.2);
    s0.computeAdvantages(gamma, lambda, 0.7);
    s1.computeAdvantages(gamma, lambda, 0.0);

    RolloutBuffer both(3, 2, 1);
    const std::vector<std::vector<double>> rewards{
        {1.0, -1.0}, {2.0, 0.0}, {0.5, 3.0}};
    const std::vector<std::vector<std::uint8_t>> dones{
        {0, 0}, {1, 0}, {0, 1}};
    const std::vector<std::vector<double>> values{
        {0.5, 0.2}, {0.4, 0.1}, {0.3, 0.6}};
    for (std::size_t t = 0; t < 3; ++t) {
        Matrix obs(2, 1);
        obs(1, 0) = 1.0f;
        both.addStep(std::move(obs), {0, 1}, rewards[t], dones[t],
                     values[t], {-0.1, -0.2});
    }
    both.computeAdvantages(gamma, lambda, std::vector<double>{0.7, 0.0});

    for (std::size_t t = 0; t < 3; ++t) {
        EXPECT_NEAR(both.advantages()[t * 2 + 0], s0.advantages()[t],
                    1e-12);
        EXPECT_NEAR(both.advantages()[t * 2 + 1], s1.advantages()[t],
                    1e-12);
        EXPECT_NEAR(both.returns()[t * 2 + 0], s0.returns()[t], 1e-12);
        EXPECT_NEAR(both.returns()[t * 2 + 1], s1.returns()[t], 1e-12);
    }

    // gatherObs addresses flat time-major (t * streams + s) indices.
    const Matrix m = both.gatherObs({1, 2});
    EXPECT_FLOAT_EQ(m(0, 0), 1.0f);  // t=0, stream 1
    EXPECT_FLOAT_EQ(m(1, 0), 0.0f);  // t=1, stream 0
}

// ------------------------------------------------------------ search --

/** Toy oracle: a sequence distinguishes iff it contains 0 then 1. */
class ToyOracle : public SequenceOracle
{
  public:
    std::size_t numPrimitives() const override { return 3; }

    bool
    isDistinguishing(const std::vector<std::size_t> &seq) override
    {
        for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
            if (seq[i] == 0 && seq[i + 1] == 1)
                return true;
        }
        return false;
    }
};

TEST(Search, ExhaustiveFindsShortestCertificate)
{
    ToyOracle oracle;
    const SearchResult r = exhaustiveSearch(oracle, 2, 1000);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.sequence, (std::vector<std::size_t>{0, 1}));
    EXPECT_GT(r.sequencesTried, 0);
}

TEST(Search, RandomSearchEventuallyFinds)
{
    ToyOracle oracle;
    Rng rng(12);
    const SearchResult r = randomSearch(oracle, 4, 10000, rng);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(oracle.isDistinguishing(r.sequence));
}

TEST(Search, ExhaustiveRespectsBudget)
{
    ToyOracle oracle;
    // With only 1 candidate examined ({0,0}), nothing is found.
    const SearchResult r = exhaustiveSearch(oracle, 2, 1);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.sequencesTried, 1);
}

TEST(Search, PrimeProbeSearchSpaceFormula)
{
    // M = 2 (N+1)^{2N+1} / (N!)^2; paper quotes ~2.05e7 for N = 8.
    EXPECT_NEAR(primeProbeSearchSpace(8) / 2.05e7, 1.0, 0.05);
    // And the e^{2N} scaling: M(9)/M(8) should be roughly e^2.
    EXPECT_NEAR(primeProbeSearchSpace(9) / primeProbeSearchSpace(8),
                std::exp(2.0), 1.5);
}

} // namespace
} // namespace autocat
