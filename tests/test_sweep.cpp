/**
 * @file
 * Sweep subsystem tests: grid expansion (scenario x policy x seed +
 * hardware-target rows), campaign execution on the worker pool with
 * per-cell failure capture, report rendering determinism (the JSON
 * byte-identity contract, independent of worker count), and the
 * sweep.* config round trip.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "eval/report.hpp"
#include "eval/sweep.hpp"
#include "eval/sweep_config.hpp"
#include "hw/machines.hpp"
#include "serve/dist_scheduler.hpp"

namespace autocat {
namespace {

/** Cheapest possible real campaign: one epoch over a 2-block cache. */
SweepConfig
tinySweep()
{
    SweepConfig cfg;
    cfg.name = "tiny";
    cfg.base.env.cache.numSets = 1;
    cfg.base.env.cache.numWays = 2;
    cfg.base.env.cache.addressSpaceSize = 6;
    cfg.base.env.attackAddrS = 0;
    cfg.base.env.attackAddrE = 2;
    cfg.base.env.victimAddrS = 0;
    cfg.base.env.victimAddrE = 0;
    cfg.base.env.victimNoAccessEnable = true;
    cfg.base.env.windowSize = 8;
    cfg.base.ppo.stepsPerEpoch = 200;
    cfg.base.ppo.minibatchSize = 100;
    cfg.base.maxEpochs = 1;
    cfg.base.evalEpisodes = 5;
    return cfg;
}

TEST(SweepGridExpansion, CrossesScenarioPolicySeed)
{
    SweepConfig cfg = tinySweep();
    cfg.grid.scenarios = {"guessing_game", "l1l2_private"};
    cfg.grid.policies = {ReplPolicy::Lru, ReplPolicy::Rrip};
    cfg.grid.seeds = {3, 4};

    const std::vector<SweepCell> cells = expandSweepGrid(cfg);
    ASSERT_EQ(cells.size(), 8u);

    // Expansion order: scenario-major, then policy, then seed.
    EXPECT_EQ(cells[0].label, "guessing_game/lru/s3");
    EXPECT_EQ(cells[1].label, "guessing_game/lru/s4");
    EXPECT_EQ(cells[2].label, "guessing_game/rrip/s3");
    EXPECT_EQ(cells[4].label, "l1l2_private/lru/s3");
    EXPECT_EQ(cells[7].label, "l1l2_private/rrip/s4");

    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].index, i);
        EXPECT_EQ(cells[i].config.env.seed, cells[i].seed);
        // PPO seeds must be decorrelated across grid seeds but fully
        // derived from them (campaign determinism).
        EXPECT_EQ(cells[i].config.ppo.seed,
                  cfg.base.ppo.seed + 1000003ull * cells[i].seed);
    }
    EXPECT_EQ(cells[2].config.env.cache.policy, ReplPolicy::Rrip);
    EXPECT_EQ(cells[0].config.env.cache.policy, ReplPolicy::Lru);
}

TEST(SweepGridExpansion, EmptyDimensionsFallBackToBase)
{
    SweepConfig cfg = tinySweep();
    cfg.base.scenario = "l2_exclusive";
    cfg.base.env.seed = 11;
    cfg.base.env.cache.policy = ReplPolicy::TreePlru;

    const std::vector<SweepCell> cells = expandSweepGrid(cfg);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].scenario, "l2_exclusive");
    EXPECT_EQ(cells[0].seed, 11u);
    EXPECT_EQ(cells[0].policy, "plru");
    EXPECT_EQ(cells[0].config.env.cache.policy, ReplPolicy::TreePlru);
}

TEST(SweepGridExpansion, AppliesPolicyToExplicitHierarchyOuterLevel)
{
    SweepConfig cfg = tinySweep();
    CacheConfig lvl = cfg.base.env.cache;
    cfg.base.env.hierarchy = HierarchyConfig::twoLevel(lvl, lvl);
    cfg.grid.policies = {ReplPolicy::Rrip};

    const std::vector<SweepCell> cells = expandSweepGrid(cfg);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].config.env.hierarchy.levels.back().cache.policy,
              ReplPolicy::Rrip);
    // The inner level keeps its own policy: the grid dimension targets
    // the attacked (outermost) level only.
    EXPECT_EQ(cells[0].config.env.hierarchy.levels.front().cache.policy,
              lvl.policy);
}

TEST(SweepGridExpansion, ExplicitHierarchyRejectsMultiScenarioGrids)
{
    // Explicit hierarchy.levels[*] override every scenario's level
    // synthesis, so a multi-scenario grid would train identical cells
    // under different labels — that must fail, not silently waste the
    // campaign.
    SweepConfig cfg = tinySweep();
    CacheConfig lvl = cfg.base.env.cache;
    cfg.base.env.hierarchy = HierarchyConfig::twoLevel(lvl, lvl);
    cfg.grid.scenarios = {"l1l2_private", "l2_exclusive"};
    EXPECT_THROW(expandSweepGrid(cfg), std::invalid_argument);

    // A single scenario over the explicit hierarchy stays valid.
    cfg.grid.scenarios = {"guessing_game"};
    EXPECT_EQ(expandSweepGrid(cfg).size(), 1u);
}

TEST(SweepGridExpansion, PolicyLabelReflectsExplicitHierarchyOuterLevel)
{
    // Without a policy grid, the label must report the attacked
    // (outermost) level's real policy, not the unused top-level key.
    SweepConfig cfg = tinySweep();
    CacheConfig lvl = cfg.base.env.cache;
    lvl.policy = ReplPolicy::Rrip;
    cfg.base.env.hierarchy =
        HierarchyConfig::twoLevel(cfg.base.env.cache, lvl);

    const std::vector<SweepCell> cells = expandSweepGrid(cfg);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].policy, "rrip");
}

TEST(SweepGridExpansion, UnknownScenarioFailsListingRegistry)
{
    SweepConfig cfg = tinySweep();
    cfg.grid.scenarios = {"no_such_scenario"};
    try {
        expandSweepGrid(cfg);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("no_such_scenario"), std::string::npos);
        // The error teaches the valid names.
        EXPECT_NE(msg.find("guessing_game"), std::string::npos);
        EXPECT_NE(msg.find("three_level"), std::string::npos);
    }
}

TEST(SweepGridExpansion, HardwareTargetRowsAppend)
{
    SweepConfig cfg = tinySweep();
    cfg.grid.scenarios = {"guessing_game"};
    cfg.grid.seeds = {5};
    cfg.grid.hardwareTargets = true;

    const std::vector<SweepCell> cells = expandSweepGrid(cfg);
    const auto presets = tableIIITargets();
    ASSERT_EQ(cells.size(), 1u + presets.size());

    for (std::size_t i = 0; i < presets.size(); ++i) {
        const SweepCell &cell = cells[1 + i];
        EXPECT_EQ(cell.scenario, "guessing_game");
        EXPECT_NE(cell.hierarchy.find(presets[i].cpu), std::string::npos);
        // The cell trains over the preset's hierarchy description.
        ASSERT_EQ(cell.config.env.hierarchy.depth(), 1u);
        EXPECT_EQ(cell.config.env.hierarchy.levels[0].cache.numWays,
                  presets[i].ways);
        EXPECT_EQ(cell.config.env.attackAddrE, presets[i].attackAddrE);
        // Undocumented policies are labeled, not leaked.
        EXPECT_EQ(cell.policy, presets[i].documented
                                   ? replPolicyName(presets[i].policy)
                                   : "n.o.d.");
    }
}

TEST(SweepRun, CapturesPerCellFailuresAndKeepsGoing)
{
    SweepConfig cfg = tinySweep();
    std::vector<SweepCell> cells = expandSweepGrid(cfg);
    ASSERT_EQ(cells.size(), 1u);

    SweepCell broken = cells[0];
    broken.index = 1;
    broken.label = "broken";
    broken.config.scenario = "scenario_that_does_not_exist";
    cells.push_back(broken);

    const SweepReport report =
        runSweepCells("failures", std::move(cells), /*workers=*/2);
    ASSERT_EQ(report.cells.size(), 2u);
    EXPECT_TRUE(report.cells[0].completed);
    EXPECT_FALSE(report.cells[1].completed);
    EXPECT_NE(report.cells[1].error.find("scenario_that_does_not_exist"),
              std::string::npos);
    EXPECT_EQ(report.numFailed(), 1u);
}

TEST(SweepRun, ReportJsonIsByteIdenticalAcrossWorkerCounts)
{
    // The acceptance contract: the same sweep at the same seeds renders
    // the same bytes, no matter how the cells were scheduled.
    SweepConfig cfg = tinySweep();
    cfg.grid.scenarios = {"guessing_game", "l1l2_private"};
    cfg.grid.policies = {ReplPolicy::Lru, ReplPolicy::TreePlru};
    cfg.grid.seeds = {5};
    // Bakeoff rows (agent column, steps_to_discovery) are part of the
    // byte-identity contract too.
    cfg.bakeoffAgents = {"ppo_masked", "random_search"};
    cfg.maskedPenalty = 0.02;

    cfg.workers = 1;
    SweepRunner serial(cfg);
    cfg.workers = 4;
    SweepRunner pooled(cfg);

    const std::string a = sweepReportJson(serial.run());
    const std::string b = sweepReportJson(pooled.run());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"schema_version\": 2"), std::string::npos);
    EXPECT_NE(a.find("\"agent\": \"random_search\""), std::string::npos);
    EXPECT_NE(a.find("\"steps_to_discovery\""), std::string::npos);

    // Timing fields are opt-in precisely because they break identity.
    ReportOptions timing;
    timing.includeTiming = true;
    const std::string timed = sweepReportJson(serial.run(), timing);
    EXPECT_NE(timed.find("\"wall_s\""), std::string::npos);
    EXPECT_EQ(a.find("\"wall_s\""), std::string::npos);
}

TEST(SweepRun, ChannelScenarioReportBytesIdenticalAcrossWorkerCounts)
{
    // The byte-identity contract extends to the non-cache channels:
    // tlb_evict and prefetch_probe cells scheduled across different
    // worker counts must render the exact same report bytes. The
    // policy grid dimension lands on channel.tlb.policy for TLB cells.
    SweepConfig cfg = tinySweep();
    cfg.grid.scenarios = {"tlb_evict", "prefetch_probe"};
    cfg.grid.policies = {ReplPolicy::Lru, ReplPolicy::TreePlru};
    cfg.grid.seeds = {5};

    cfg.workers = 1;
    SweepRunner serial(cfg);
    cfg.workers = 3;
    SweepRunner pooled(cfg);

    const SweepReport serial_report = serial.run();
    const std::string a = sweepReportJson(serial_report);
    const std::string b = sweepReportJson(pooled.run());
    EXPECT_EQ(a, b);

    ASSERT_EQ(serial_report.cells.size(), 4u);
    for (const SweepCellResult &cell : serial_report.cells)
        EXPECT_TRUE(cell.completed) << cell.cell.label << ": " << cell.error;
    EXPECT_EQ(serial_report.cells[0].cell.label, "tlb_evict/lru/s5");
    EXPECT_EQ(serial_report.cells[3].cell.label, "prefetch_probe/plru/s5");
}

TEST(SweepRun, ChannelScenarioDistShardsMatchLocalBytes)
{
    // Same contract through the distributed service: process-sharded
    // channel-scenario cells (--dist path) must reproduce the local
    // workers=1 bytes. Spawns the real cell_runner, located via
    // AUTOCAT_CELL_RUNNER (set by CTest); skips when absent.
    const char *runner = std::getenv("AUTOCAT_CELL_RUNNER");
    if (runner == nullptr || *runner == '\0')
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";

    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() /
        ("autocat_sweep_channel_dist_" + std::to_string(::getpid()));
    fs::remove_all(root);
    fs::create_directories(root);

    SweepConfig cfg = tinySweep();
    cfg.base.maxEpochs = 2;
    cfg.grid.scenarios = {"tlb_evict", "prefetch_probe"};
    cfg.grid.policies = {ReplPolicy::Lru};
    cfg.grid.seeds = {5};
    // A masked cell and a search cell ride along so the agent and
    // steps_to_discovery fields cross the worker wire (job/row v2)
    // and still reproduce the local bytes.
    cfg.bakeoffAgents = {"ppo_masked", "random_search"};
    cfg.maskedPenalty = 0.02;
    const std::vector<SweepCell> cells = expandSweepGrid(cfg);
    ASSERT_EQ(cells.size(), 4u);

    // Matching checkpoint cadence on both sides keeps the epoch
    // boundaries (and so the trained bytes) identical.
    const SweepReport local = runSweepCells(
        cfg.name, cells, /*workers=*/1, {},
        (root / "local_ckpt").string(), /*checkpoint_every=*/1);

    DistSweepOptions opts;
    opts.processes = 3;
    opts.runnerPath = runner;
    opts.workDir = (root / "work").string();
    opts.checkpointDir = (root / "ckpt").string();
    opts.checkpointEvery = 1;
    const SweepReport dist = runSweepCellsDist(cfg.name, cells, opts);

    ASSERT_EQ(dist.cells.size(), local.cells.size());
    for (const SweepCellResult &cell : dist.cells)
        EXPECT_TRUE(cell.completed) << cell.cell.label << ": " << cell.error;
    EXPECT_EQ(sweepReportJson(dist, {}), sweepReportJson(local, {}));
    fs::remove_all(root);
}

TEST(SweepRun, CsvAndSummaryTableCoverEveryCell)
{
    SweepConfig cfg = tinySweep();
    cfg.grid.policies = {ReplPolicy::Lru, ReplPolicy::TreePlru};
    SweepRunner runner(cfg);
    const SweepReport report = runner.run();

    std::ostringstream csv;
    writeSweepReportCsv(csv, report);
    std::size_t lines = 0;
    for (const char c : csv.str())
        lines += c == '\n';
    EXPECT_EQ(lines, 1u + report.cells.size());  // header + rows

    EXPECT_EQ(sweepSummaryTable(report).numRows(), report.cells.size());
}

TEST(SweepConfigFile, RoundTripIsAFixedPoint)
{
    const std::string text = R"(
        num_sets = 4
        num_ways = 2
        rep_policy = rrip
        window_size = 24
        hierarchy.num_cores = 2
        hierarchy.levels[0].num_sets = 4
        hierarchy.levels[0].num_ways = 1
        hierarchy.levels[0].shared = false
        hierarchy.levels[1].num_sets = 4
        hierarchy.levels[1].num_ways = 2
        hierarchy.levels[1].inclusion = exclusive
        sweep.name = fixture
        sweep.scenarios = l1l2_private, three_level
        sweep.policies = lru, rrip
        sweep.seeds = 1, 2, 3
        sweep.hardware_targets = true
        sweep.workers = 3
        sweep.include_timing = true
        sweep.report_json = out.json
        sweep.bakeoff_agents = ppo_masked, random_search
        sweep.bakeoff_scenarios = guessing_game
        sweep.masked_penalty = 0.02
    )";

    const SweepConfig parsed = parseSweepConfig(text);
    EXPECT_EQ(parsed.name, "fixture");
    ASSERT_EQ(parsed.grid.scenarios.size(), 2u);
    ASSERT_EQ(parsed.grid.policies.size(), 2u);
    EXPECT_EQ(parsed.grid.policies[1], ReplPolicy::Rrip);
    ASSERT_EQ(parsed.grid.seeds.size(), 3u);
    EXPECT_TRUE(parsed.grid.hardwareTargets);
    EXPECT_EQ(parsed.workers, 3);
    ASSERT_EQ(parsed.bakeoffAgents.size(), 2u);
    EXPECT_EQ(parsed.bakeoffAgents[0], "ppo_masked");
    ASSERT_EQ(parsed.bakeoffScenarios.size(), 1u);
    EXPECT_EQ(parsed.bakeoffScenarios[0], "guessing_game");
    EXPECT_EQ(parsed.maskedPenalty, 0.02);
    EXPECT_TRUE(parsed.includeTiming);
    EXPECT_EQ(parsed.reportJsonPath, "out.json");
    EXPECT_EQ(parsed.base.env.hierarchy.depth(), 2u);

    // serialize -> parse -> serialize must be a fixed point.
    const std::string once = renderSweepConfig(parsed);
    const std::string twice = renderSweepConfig(parseSweepConfig(once));
    EXPECT_EQ(once, twice);
}

TEST(SweepConfigFile, MalformedSweepKeysFailLoudly)
{
    EXPECT_THROW(parseSweepConfig(std::string("sweep.bogus = 1")),
                 std::invalid_argument);
    EXPECT_THROW(parseSweepConfig(std::string("sweep.policies = lru,,")),
                 std::invalid_argument);
    EXPECT_THROW(
        parseSweepConfig(std::string("sweep.policies = not_a_policy")),
        std::invalid_argument);
    EXPECT_THROW(parseSweepConfig(std::string("sweep.workers = 0")),
                 std::invalid_argument);
    // Numeric values are strict: no silent truncation or wrapping.
    EXPECT_THROW(parseSweepConfig(std::string("sweep.seeds = -1")),
                 std::invalid_argument);
    EXPECT_THROW(parseSweepConfig(std::string("sweep.seeds = 3abc")),
                 std::invalid_argument);
    EXPECT_THROW(parseSweepConfig(std::string("sweep.seeds = 7; 8")),
                 std::invalid_argument);
    EXPECT_THROW(
        parseSweepConfig(std::string(
            "sweep.seeds = 123456789012345678901234567890")),
        std::invalid_argument);
    EXPECT_THROW(parseSweepConfig(std::string("sweep.workers = 2x")),
                 std::invalid_argument);
    // A trailing comma is a dangling (empty) item, not a no-op.
    EXPECT_THROW(parseSweepConfig(std::string("sweep.seeds = 1, 2,")),
                 std::invalid_argument);
    EXPECT_THROW(
        parseSweepConfig(std::string("sweep.scenarios = a, b,")),
        std::invalid_argument);
    EXPECT_THROW(
        parseSweepConfig(std::string("sweep.hardware_targets = maybe")),
        std::invalid_argument);
    EXPECT_THROW(parseSweepConfig(std::string("sweep.scenarios =")),
                 std::invalid_argument);
    // Errors carry line numbers like the core parser's.
    try {
        parseSweepConfig(std::string("\n\nsweep.bogus = 1\n"));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(SweepConfigFile, RenderRejectsUnrepresentableValues)
{
    // '#' begins a comment mid-line, so values containing it would
    // silently truncate on re-parse instead of round-tripping.
    SweepConfig cfg;
    cfg.name = "grid #3";
    EXPECT_THROW(renderSweepConfig(cfg), std::invalid_argument);
    cfg.name = "grid";
    cfg.reportJsonPath = "out#1.json";
    EXPECT_THROW(renderSweepConfig(cfg), std::invalid_argument);
    // Whitespace is trimmed on parse, and ',' splits list items.
    cfg.reportJsonPath.clear();
    cfg.name = "grid ";
    EXPECT_THROW(renderSweepConfig(cfg), std::invalid_argument);
    cfg.name = "grid";
    cfg.grid.scenarios = {"a,b"};
    EXPECT_THROW(renderSweepConfig(cfg), std::invalid_argument);
}

TEST(SweepConfigFile, HighPrecisionDoublesRoundTripExactly)
{
    SweepConfig cfg;
    cfg.base.ppo.lr = 1.0 / 3.0;
    cfg.base.env.stepReward = -0.012345678901234567;
    const SweepConfig reparsed =
        parseSweepConfig(renderSweepConfig(cfg));
    EXPECT_EQ(reparsed.base.ppo.lr, cfg.base.ppo.lr);
    EXPECT_EQ(reparsed.base.env.stepReward, cfg.base.env.stepReward);
}

TEST(SweepConfigFile, BaseKeysStillRejectTypos)
{
    EXPECT_THROW(parseSweepConfig(std::string("num_waysss = 4")),
                 std::invalid_argument);
}

} // namespace
} // namespace autocat
