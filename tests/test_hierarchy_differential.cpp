/**
 * @file
 * Differential test: CacheHierarchy vs an independently written naive
 * oracle model.
 *
 * The oracle reimplements the documented hierarchy semantics
 * (cache/memory_system.hpp: innermost-out walk, inclusive
 * back-invalidation, exclusive single-residency victim caches, NINE,
 * private-vs-shared levels) over the simplest possible data
 * structures — per-set way arrays plus an explicit LRU recency list —
 * with none of the engine's flattened replacement metadata, event
 * plumbing, or hot-path layout. Both models are driven with ~100k
 * seeded random operations per configuration (accesses from both
 * domains plus flushes) and must agree on every observable:
 *
 *  - the MemoryAccessResult of every access (hit, hitLevel,
 *    victimMissed, servedUncached),
 *  - the outermost-level cache event stream (demand accesses, victim
 *    fills, flushes, with hit/eviction payloads — what detectors see),
 *  - full-address-space residency (contains()) at checkpoints.
 *
 * Configurations cover depths 1-3, all three inclusion policies
 * (including an exclusive-exclusive spill chain), and private vs
 * shared inner levels. LRU everywhere: the point is the hierarchy
 * walk and the replacement bookkeeping, not stochastic policies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cache/memory_system.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

constexpr std::uint64_t kAddressSpace = 48;
constexpr int kOpsPerConfig = 100000;

// ------------------------------------------------------------- oracle --

/** Observable outer-level event, mirroring CacheEvent's payload. */
struct OracleEvent
{
    CacheOp op = CacheOp::DemandAccess;
    Domain domain = Domain::Attacker;
    std::uint64_t addr = 0;
    std::uint64_t setIndex = 0;
    bool hit = false;
    bool evicted = false;
    std::uint64_t evictedAddr = 0;
    Domain evictedOwner = Domain::Attacker;

    bool
    operator==(const OracleEvent &o) const
    {
        return op == o.op && domain == o.domain && addr == o.addr &&
               setIndex == o.setIndex && hit == o.hit &&
               evicted == o.evicted && evictedAddr == o.evictedAddr &&
               evictedOwner == o.evictedOwner;
    }
};

OracleEvent
fromEngine(const CacheEvent &ev)
{
    OracleEvent out;
    out.op = ev.op;
    out.domain = ev.domain;
    out.addr = ev.addr;
    out.setIndex = ev.setIndex;
    out.hit = ev.hit;
    out.evicted = ev.evicted;
    out.evictedAddr = ev.evictedAddr;
    out.evictedOwner = ev.evictedOwner;
    return out;
}

/** What one oracle-cache operation observed. */
struct OracleAccess
{
    bool hit = false;
    bool evicted = false;
    std::uint64_t evictedAddr = 0;
    Domain evictedOwner = Domain::Attacker;
};

/**
 * Naive true-LRU set-associative cache: per-set way slots plus an
 * explicit recency list of way indices (front = most recent). Fills
 * prefer the lowest-index invalid way; an invalidated way moves to
 * the back of the recency list (it refills last among valid victims
 * and first among invalid slots by index order).
 */
class OracleCache
{
  public:
    OracleCache(unsigned sets, unsigned ways)
        : sets_(sets), ways_(ways), lines_(sets * ways),
          recency_(sets)
    {
        for (unsigned s = 0; s < sets; ++s) {
            // Power-on: way 0 is the oldest (first victim).
            for (unsigned w = ways; w-- > 0;)
                recency_[s].push_back(w);
        }
    }

    std::uint64_t setOf(std::uint64_t addr) const { return addr % sets_; }

    OracleAccess
    access(std::uint64_t addr, Domain domain)
    {
        const std::uint64_t s = setOf(addr);
        OracleAccess out;

        const int hit_way = findWay(s, addr);
        if (hit_way >= 0) {
            out.hit = true;
            line(s, hit_way).owner = domain;
            touchFront(s, static_cast<unsigned>(hit_way));
            return out;
        }

        int way = -1;
        for (unsigned w = 0; w < ways_; ++w) {
            if (!line(s, w).valid) {
                way = static_cast<int>(w);
                break;
            }
        }
        if (way < 0) {
            // Victim: least-recently-used way (all are valid here).
            way = static_cast<int>(recency_[s].back());
            out.evicted = true;
            out.evictedAddr = line(s, way).addr;
            out.evictedOwner = line(s, way).owner;
        }
        line(s, way) = {true, addr, domain};
        touchFront(s, static_cast<unsigned>(way));
        return out;
    }

    /** Invalidate without victim handling; true when a line dropped. */
    bool
    invalidate(std::uint64_t addr)
    {
        const std::uint64_t s = setOf(addr);
        const int way = findWay(s, addr);
        if (way < 0)
            return false;
        line(s, way).valid = false;
        touchBack(s, static_cast<unsigned>(way));
        return true;
    }

    bool
    contains(std::uint64_t addr) const
    {
        return findWay(setOf(addr), addr) >= 0;
    }

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t addr = 0;
        Domain owner = Domain::Attacker;
    };

    Line &line(std::uint64_t s, int w) { return lines_[s * ways_ + w]; }
    const Line &
    line(std::uint64_t s, int w) const
    {
        return lines_[s * ways_ + w];
    }

    int
    findWay(std::uint64_t s, std::uint64_t addr) const
    {
        for (unsigned w = 0; w < ways_; ++w) {
            if (line(s, w).valid && line(s, w).addr == addr)
                return static_cast<int>(w);
        }
        return -1;
    }

    void
    touchFront(std::uint64_t s, unsigned way)
    {
        auto &order = recency_[s];
        order.erase(std::find(order.begin(), order.end(), way));
        order.insert(order.begin(), way);
    }

    void
    touchBack(std::uint64_t s, unsigned way)
    {
        auto &order = recency_[s];
        order.erase(std::find(order.begin(), order.end(), way));
        order.push_back(way);
    }

    unsigned sets_, ways_;
    std::vector<Line> lines_;
    std::vector<std::vector<unsigned>> recency_;  ///< front = newest
};

/** One oracle hierarchy level. */
struct OracleLevelSpec
{
    unsigned sets;
    unsigned ways;
    InclusionPolicy inclusion;
    bool shared;
};

/**
 * Naive hierarchy walk over OracleCaches, emitting outer-level events.
 * Independent restatement of the spec in cache/memory_system.hpp.
 */
class OracleHierarchy
{
  public:
    OracleHierarchy(const std::vector<OracleLevelSpec> &specs,
                    unsigned num_cores)
        : specs_(specs)
    {
        for (const OracleLevelSpec &spec : specs) {
            std::vector<OracleCache> instances;
            const unsigned n = spec.shared ? 1 : num_cores;
            for (unsigned c = 0; c < n; ++c)
                instances.emplace_back(spec.sets, spec.ways);
            levels_.push_back(std::move(instances));
        }
    }

    const std::vector<OracleEvent> &events() const { return events_; }

    MemoryAccessResult
    access(std::uint64_t addr, Domain domain)
    {
        const unsigned core = domain == Domain::Attacker ? 0 : 1;
        const unsigned depth = static_cast<unsigned>(levels_.size());
        MemoryAccessResult out;

        bool resident = false;
        bool have_victim = false;
        std::uint64_t victim_addr = 0;
        Domain victim_owner = Domain::Attacker;

        for (unsigned k = 0; k < depth; ++k) {
            OracleCache &cache = instanceFor(k, core);
            const bool exclusive =
                specs_[k].inclusion == InclusionPolicy::Exclusive && k > 0;
            bool hit_here = false;

            if (exclusive) {
                // Exclusive: no demand fill. A hit moves the line
                // inward (some inner level just installed it), so the
                // copy here is dropped to keep single residency.
                if (cache.contains(addr)) {
                    if (resident)
                        cache.invalidate(addr);
                    hit_here = true;
                }
                if (have_victim) {
                    have_victim = installInto(k, core, victim_addr,
                                              victim_owner, &victim_addr,
                                              &victim_owner);
                }
            } else {
                const OracleAccess res = cache.access(addr, domain);
                emitIfOuter(k, CacheOp::DemandAccess, domain, addr,
                            cache.setOf(addr), res);
                resident = true;
                hit_here = res.hit;
                have_victim = res.evicted;
                victim_addr = res.evictedAddr;
                victim_owner = res.evictedOwner;
                if (res.evicted &&
                    specs_[k].inclusion == InclusionPolicy::Inclusive &&
                    k > 0) {
                    backInvalidateInner(k, res.evictedAddr, core);
                }
            }

            if (hit_here) {
                out.hit = true;
                out.hitLevel = static_cast<int>(k) + 1;
                // A victim still in flight spills outward through
                // consecutive exclusive levels.
                std::uint64_t spill_addr = victim_addr;
                Domain spill_owner = victim_owner;
                for (unsigned j = k + 1; have_victim && j < depth &&
                                         specs_[j].inclusion ==
                                             InclusionPolicy::Exclusive;
                     ++j) {
                    have_victim = installInto(j, core, spill_addr,
                                              spill_owner, &spill_addr,
                                              &spill_owner);
                }
                break;
            }
        }

        out.servedUncached = false;  // no PL locking in this test
        out.victimMissed = domain == Domain::Victim && !out.hit;
        return out;
    }

    void
    flush(std::uint64_t addr, Domain domain)
    {
        const unsigned depth = static_cast<unsigned>(levels_.size());
        for (unsigned k = 0; k + 1 < depth; ++k) {
            for (OracleCache &cache : levels_[k])
                cache.invalidate(addr);
        }
        for (OracleCache &cache : levels_.back()) {
            OracleEvent ev;
            ev.op = CacheOp::Flush;
            ev.domain = domain;
            ev.addr = addr;
            ev.setIndex = cache.setOf(addr);
            ev.hit = cache.invalidate(addr);
            events_.push_back(ev);
        }
    }

    bool
    contains(std::uint64_t addr) const
    {
        for (const auto &instances : levels_) {
            for (const OracleCache &cache : instances) {
                if (cache.contains(addr))
                    return true;
            }
        }
        return false;
    }

  private:
    OracleCache &
    instanceFor(unsigned level, unsigned core)
    {
        auto &instances = levels_[level];
        return instances[specs_[level].shared ? 0 : core];
    }

    /** Install a victim into level @p k (VictimFill); returns whether
     *  a displaced line continues outward. */
    bool
    installInto(unsigned k, unsigned core, std::uint64_t addr,
                Domain owner, std::uint64_t *next_addr, Domain *next_owner)
    {
        OracleCache &cache = instanceFor(k, core);
        const OracleAccess fill = cache.access(addr, owner);
        emitIfOuter(k, CacheOp::VictimFill, owner, addr, cache.setOf(addr),
                    fill);
        *next_addr = fill.evictedAddr;
        *next_owner = fill.evictedOwner;
        return fill.evicted;
    }

    void
    backInvalidateInner(unsigned level, std::uint64_t addr, unsigned core)
    {
        const bool evicting_shared = specs_[level].shared;
        for (unsigned k = 0; k < level; ++k) {
            if (evicting_shared || specs_[k].shared) {
                for (OracleCache &cache : levels_[k])
                    cache.invalidate(addr);
            } else {
                instanceFor(k, core).invalidate(addr);
            }
        }
    }

    void
    emitIfOuter(unsigned level, CacheOp op, Domain domain,
                std::uint64_t addr, std::uint64_t set_index,
                const OracleAccess &res)
    {
        if (level + 1 != levels_.size())
            return;
        OracleEvent ev;
        ev.op = op;
        ev.domain = domain;
        ev.addr = addr;
        ev.setIndex = set_index;
        ev.hit = res.hit;
        ev.evicted = res.evicted;
        ev.evictedAddr = res.evictedAddr;
        ev.evictedOwner = res.evictedOwner;
        events_.push_back(ev);
    }

    std::vector<OracleLevelSpec> specs_;
    std::vector<std::vector<OracleCache>> levels_;
    std::vector<OracleEvent> events_;
};

// ------------------------------------------------------ the differential

HierarchyConfig
engineConfig(const std::vector<OracleLevelSpec> &specs, unsigned num_cores)
{
    HierarchyConfig cfg;
    cfg.numCores = num_cores;
    for (const OracleLevelSpec &spec : specs) {
        CacheConfig level;
        level.numSets = spec.sets;
        level.numWays = spec.ways;
        level.policy = ReplPolicy::Lru;
        level.addressSpaceSize = kAddressSpace;
        cfg.levels.push_back({level, spec.inclusion, spec.shared});
    }
    return cfg;
}

std::string
describeEvent(const OracleEvent &ev)
{
    std::string s = "op=" + std::to_string(static_cast<int>(ev.op)) +
                    " dom=" + std::to_string(static_cast<int>(ev.domain)) +
                    " addr=" + std::to_string(ev.addr) +
                    " set=" + std::to_string(ev.setIndex) +
                    " hit=" + std::to_string(ev.hit) +
                    " evicted=" + std::to_string(ev.evicted);
    if (ev.evicted)
        s += " evictedAddr=" + std::to_string(ev.evictedAddr) + " owner=" +
             std::to_string(static_cast<int>(ev.evictedOwner));
    return s;
}

void
runDifferential(const std::vector<OracleLevelSpec> &specs,
                const std::string &name, std::uint64_t seed)
{
    const unsigned num_cores = 2;
    CacheHierarchy engine(engineConfig(specs, num_cores));
    OracleHierarchy oracle(specs, num_cores);

    std::vector<OracleEvent> engine_events;
    engine.setEventListener([&engine_events](const CacheEvent &ev) {
        engine_events.push_back(fromEngine(ev));
    });

    Rng rng(seed);
    std::size_t compared_events = 0;
    for (int i = 0; i < kOpsPerConfig; ++i) {
        const std::uint64_t addr = rng.uniformInt(kAddressSpace);
        const Domain domain =
            rng.uniformInt(2) == 0 ? Domain::Attacker : Domain::Victim;
        const std::uint64_t op = rng.uniformInt(10);

        if (op < 9) {
            const MemoryAccessResult got = engine.access(addr, domain);
            const MemoryAccessResult want = oracle.access(addr, domain);
            ASSERT_EQ(got.hit, want.hit)
                << name << ": op " << i << " addr " << addr;
            ASSERT_EQ(got.hitLevel, want.hitLevel)
                << name << ": op " << i << " addr " << addr;
            ASSERT_EQ(got.victimMissed, want.victimMissed)
                << name << ": op " << i << " addr " << addr;
            ASSERT_EQ(got.servedUncached, want.servedUncached)
                << name << ": op " << i << " addr " << addr;
        } else {
            engine.flush(addr, domain);
            oracle.flush(addr, domain);
        }

        // Event streams must stay in lock-step (count and payload).
        const auto &want_events = oracle.events();
        ASSERT_EQ(engine_events.size(), want_events.size())
            << name << ": event count diverged after op " << i;
        for (; compared_events < engine_events.size();
             ++compared_events) {
            ASSERT_TRUE(engine_events[compared_events] ==
                        want_events[compared_events])
                << name << ": event " << compared_events << " after op "
                << i << "\n  engine: "
                << describeEvent(engine_events[compared_events])
                << "\n  oracle: "
                << describeEvent(want_events[compared_events]);
        }

        if (i % 10000 == 0 || i + 1 == kOpsPerConfig) {
            for (std::uint64_t a = 0; a < kAddressSpace; ++a) {
                ASSERT_EQ(engine.contains(a), oracle.contains(a))
                    << name << ": residency of " << a << " after op " << i;
            }
        }
    }
}

TEST(HierarchyDifferential, Depth1Shared)
{
    runDifferential({{4, 2, InclusionPolicy::Inclusive, true}},
                    "depth1", 101);
}

TEST(HierarchyDifferential, Depth2InclusivePrivateL1)
{
    runDifferential({{2, 1, InclusionPolicy::Inclusive, false},
                     {4, 2, InclusionPolicy::Inclusive, true}},
                    "d2-incl-priv", 202);
}

TEST(HierarchyDifferential, Depth2InclusiveSharedL1)
{
    runDifferential({{2, 2, InclusionPolicy::Inclusive, true},
                     {4, 2, InclusionPolicy::Inclusive, true}},
                    "d2-incl-shared", 303);
}

TEST(HierarchyDifferential, Depth2ExclusivePrivateL1)
{
    runDifferential({{2, 1, InclusionPolicy::Inclusive, false},
                     {4, 2, InclusionPolicy::Exclusive, true}},
                    "d2-excl", 404);
}

TEST(HierarchyDifferential, Depth2NinePrivateL1)
{
    runDifferential({{2, 1, InclusionPolicy::Inclusive, false},
                     {4, 2, InclusionPolicy::Nine, true}},
                    "d2-nine", 505);
}

TEST(HierarchyDifferential, Depth3AllInclusive)
{
    runDifferential({{2, 1, InclusionPolicy::Inclusive, false},
                     {2, 2, InclusionPolicy::Inclusive, false},
                     {4, 4, InclusionPolicy::Inclusive, true}},
                    "d3-incl", 606);
}

TEST(HierarchyDifferential, Depth3ExclusiveOuter)
{
    runDifferential({{2, 1, InclusionPolicy::Inclusive, false},
                     {2, 2, InclusionPolicy::Inclusive, false},
                     {4, 2, InclusionPolicy::Exclusive, true}},
                    "d3-excl-outer", 707);
}

TEST(HierarchyDifferential, Depth3ExclusiveChain)
{
    // Consecutive exclusive levels: a victim spilling from L1 can ripple
    // through L2 into L3.
    runDifferential({{2, 1, InclusionPolicy::Inclusive, false},
                     {2, 1, InclusionPolicy::Exclusive, false},
                     {4, 2, InclusionPolicy::Exclusive, true}},
                    "d3-excl-chain", 808);
}

TEST(HierarchyDifferential, Depth3NineMiddle)
{
    runDifferential({{2, 2, InclusionPolicy::Inclusive, true},
                     {2, 2, InclusionPolicy::Nine, true},
                     {4, 2, InclusionPolicy::Inclusive, true}},
                    "d3-nine-mid", 909);
}

} // namespace
} // namespace autocat
