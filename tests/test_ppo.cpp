/**
 * @file
 * PPO trainer tests on closed-form environments: a contextual bandit
 * (immediate observation-conditioned reward) and a probe-then-guess
 * memory task that mirrors the structure of the guessing game.
 */

#include <gtest/gtest.h>

#include "rl/ppo.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

/** Contextual bandit: the action must match the observed bit. */
class BanditEnv : public Environment
{
  public:
    std::size_t observationSize() const override { return 2; }
    std::size_t numActions() const override { return 2; }

    std::vector<float>
    reset() override
    {
        bit_ = rng_.uniformInt(2);
        return obs();
    }

    StepResult
    step(std::size_t action) override
    {
        StepResult r;
        r.reward = action == bit_ ? 1.0 : -1.0;
        r.info.guessMade = true;
        r.info.guessCorrect = action == bit_;
        r.done = true;
        r.obs = obs();
        return r;
    }

  private:
    std::vector<float>
    obs() const
    {
        std::vector<float> o(2, 0.0f);
        o[bit_] = 1.0f;
        return o;
    }

    Rng rng_{42};
    std::size_t bit_ = 0;
};

/**
 * Probe-then-guess: the hidden bit is only visible after taking the
 * probe action; guessing blind is a coin flip, probing then guessing
 * is a sure win minus a small probe cost.
 */
class ProbeEnv : public Environment
{
  public:
    std::size_t observationSize() const override { return 3; }
    std::size_t numActions() const override { return 3; }

    std::vector<float>
    reset() override
    {
        bit_ = rng_.uniformInt(2);
        probed_ = false;
        steps_ = 0;
        return obs();
    }

    StepResult
    step(std::size_t action) override
    {
        StepResult r;
        ++steps_;
        if (action == 0) {
            probed_ = true;
            r.reward = -0.01;
        } else {
            const bool correct = probed_ && action - 1 == bit_;
            r.reward = correct ? 1.0 : -1.0;
            r.info.guessMade = true;
            r.info.guessCorrect = correct;
            r.done = true;
        }
        if (steps_ >= 6 && !r.done) {
            r.done = true;
            r.reward = -1.0;
        }
        r.obs = obs();
        return r;
    }

  private:
    std::vector<float>
    obs() const
    {
        std::vector<float> o(3, 0.0f);
        o[0] = probed_ ? 1.0f : 0.0f;
        if (probed_)
            o[1 + bit_] = 1.0f;
        return o;
    }

    Rng rng_{43};
    std::size_t bit_ = 0;
    bool probed_ = false;
    int steps_ = 0;
};

TEST(Ppo, SolvesContextualBandit)
{
    BanditEnv env;
    PpoConfig cfg;
    cfg.seed = 3;
    cfg.stepsPerEpoch = 2000;
    PpoTrainer trainer(env, cfg);
    const int epoch = trainer.trainUntil(0.99, 10, 200);
    EXPECT_GT(epoch, 0) << "bandit did not converge";
}

TEST(Ppo, SolvesProbeThenGuess)
{
    ProbeEnv env;
    PpoConfig cfg;
    cfg.seed = 5;
    cfg.stepsPerEpoch = 2000;
    PpoTrainer trainer(env, cfg);
    const int epoch = trainer.trainUntil(0.99, 20, 200);
    ASSERT_GT(epoch, 0) << "probe env did not converge";
    // The converged policy must actually probe (2-step episodes).
    const EvalStats ev = trainer.evaluate(100);
    EXPECT_NEAR(ev.meanEpisodeLength, 2.0, 0.3);
    EXPECT_GE(ev.meanReturn, 0.9);
}

TEST(Ppo, EvaluateReportsBitRate)
{
    BanditEnv env;
    PpoConfig cfg;
    cfg.seed = 7;
    cfg.stepsPerEpoch = 500;
    PpoTrainer trainer(env, cfg);
    trainer.runEpoch();
    const EvalStats ev = trainer.evaluate(50);
    // One guess per 1-step episode.
    EXPECT_DOUBLE_EQ(ev.bitRate, 1.0);
    EXPECT_EQ(ev.guesses, 50u);
}

TEST(Ppo, EpochStatsArePopulated)
{
    BanditEnv env;
    PpoConfig cfg;
    cfg.seed = 9;
    cfg.stepsPerEpoch = 500;
    PpoTrainer trainer(env, cfg);
    const EpochStats stats = trainer.runEpoch();
    EXPECT_EQ(stats.epoch, 1);
    EXPECT_GT(stats.entropy, 0.0);
    EXPECT_NE(stats.meanReturn, 0.0);
    EXPECT_EQ(trainer.totalEnvSteps(), 500);
}

TEST(Ppo, DeterministicAcrossIdenticalRuns)
{
    BanditEnv env1, env2;
    PpoConfig cfg;
    cfg.seed = 11;
    cfg.stepsPerEpoch = 500;
    PpoTrainer t1(env1, cfg), t2(env2, cfg);
    const EpochStats s1 = t1.runEpoch();
    const EpochStats s2 = t2.runEpoch();
    EXPECT_DOUBLE_EQ(s1.meanReturn, s2.meanReturn);
    EXPECT_DOUBLE_EQ(s1.policyLoss, s2.policyLoss);
}

} // namespace
} // namespace autocat
