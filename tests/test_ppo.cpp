/**
 * @file
 * PPO trainer tests on closed-form environments: a contextual bandit
 * (immediate observation-conditioned reward) and a probe-then-guess
 * memory task that mirrors the structure of the guessing game.
 */

#include <gtest/gtest.h>

#include <memory>

#include "rl/ppo.hpp"
#include "rl/vec_env.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

/** Contextual bandit: the action must match the observed bit. */
class BanditEnv : public Environment
{
  public:
    explicit BanditEnv(std::uint64_t seed = 42) : rng_(seed) {}

    std::size_t observationSize() const override { return 2; }
    std::size_t numActions() const override { return 2; }

    std::vector<float>
    reset() override
    {
        bit_ = rng_.uniformInt(2);
        return obs();
    }

    StepResult
    step(std::size_t action) override
    {
        StepResult r;
        r.reward = action == bit_ ? 1.0 : -1.0;
        r.info.guessMade = true;
        r.info.guessCorrect = action == bit_;
        r.done = true;
        r.obs = obs();
        return r;
    }

  private:
    std::vector<float>
    obs() const
    {
        std::vector<float> o(2, 0.0f);
        o[bit_] = 1.0f;
        return o;
    }

    Rng rng_;
    std::size_t bit_ = 0;
};

/** A VecEnv of @p n independently-seeded bandits. */
template <typename Adapter>
std::unique_ptr<Adapter>
makeBanditVec(std::size_t n, std::uint64_t base_seed)
{
    std::vector<std::unique_ptr<Environment>> envs;
    for (std::size_t i = 0; i < n; ++i)
        envs.push_back(std::make_unique<BanditEnv>(base_seed + i));
    return std::make_unique<Adapter>(std::move(envs));
}

/**
 * Probe-then-guess: the hidden bit is only visible after taking the
 * probe action; guessing blind is a coin flip, probing then guessing
 * is a sure win minus a small probe cost.
 */
class ProbeEnv : public Environment
{
  public:
    std::size_t observationSize() const override { return 3; }
    std::size_t numActions() const override { return 3; }

    std::vector<float>
    reset() override
    {
        bit_ = rng_.uniformInt(2);
        probed_ = false;
        steps_ = 0;
        return obs();
    }

    StepResult
    step(std::size_t action) override
    {
        StepResult r;
        ++steps_;
        if (action == 0) {
            probed_ = true;
            r.reward = -0.01;
        } else {
            const bool correct = probed_ && action - 1 == bit_;
            r.reward = correct ? 1.0 : -1.0;
            r.info.guessMade = true;
            r.info.guessCorrect = correct;
            r.done = true;
        }
        if (steps_ >= 6 && !r.done) {
            r.done = true;
            r.reward = -1.0;
        }
        r.obs = obs();
        return r;
    }

  private:
    std::vector<float>
    obs() const
    {
        std::vector<float> o(3, 0.0f);
        o[0] = probed_ ? 1.0f : 0.0f;
        if (probed_)
            o[1 + bit_] = 1.0f;
        return o;
    }

    Rng rng_{43};
    std::size_t bit_ = 0;
    bool probed_ = false;
    int steps_ = 0;
};

TEST(Ppo, SolvesContextualBandit)
{
    BanditEnv env;
    PpoConfig cfg;
    cfg.seed = 3;
    cfg.stepsPerEpoch = 2000;
    PpoTrainer trainer(env, cfg);
    const int epoch = trainer.trainUntil(0.99, 10, 200);
    EXPECT_GT(epoch, 0) << "bandit did not converge";
}

TEST(Ppo, SolvesProbeThenGuess)
{
    ProbeEnv env;
    PpoConfig cfg;
    cfg.seed = 5;
    cfg.stepsPerEpoch = 2000;
    PpoTrainer trainer(env, cfg);
    const int epoch = trainer.trainUntil(0.99, 20, 200);
    ASSERT_GT(epoch, 0) << "probe env did not converge";
    // The converged policy must actually probe (2-step episodes).
    const EvalStats ev = trainer.evaluate(100);
    EXPECT_NEAR(ev.meanEpisodeLength, 2.0, 0.3);
    EXPECT_GE(ev.meanReturn, 0.9);
}

TEST(Ppo, EvaluateReportsBitRate)
{
    BanditEnv env;
    PpoConfig cfg;
    cfg.seed = 7;
    cfg.stepsPerEpoch = 500;
    PpoTrainer trainer(env, cfg);
    trainer.runEpoch();
    const EvalStats ev = trainer.evaluate(50);
    // One guess per 1-step episode.
    EXPECT_DOUBLE_EQ(ev.bitRate, 1.0);
    EXPECT_EQ(ev.guesses, 50u);
}

TEST(Ppo, EpochStatsArePopulated)
{
    BanditEnv env;
    PpoConfig cfg;
    cfg.seed = 9;
    cfg.stepsPerEpoch = 500;
    PpoTrainer trainer(env, cfg);
    const EpochStats stats = trainer.runEpoch();
    EXPECT_EQ(stats.epoch, 1);
    EXPECT_GT(stats.entropy, 0.0);
    EXPECT_NE(stats.meanReturn, 0.0);
    EXPECT_EQ(trainer.totalEnvSteps(), 500);
}

TEST(Ppo, DeterministicAcrossIdenticalRuns)
{
    BanditEnv env1, env2;
    PpoConfig cfg;
    cfg.seed = 11;
    cfg.stepsPerEpoch = 500;
    PpoTrainer t1(env1, cfg), t2(env2, cfg);
    const EpochStats s1 = t1.runEpoch();
    const EpochStats s2 = t2.runEpoch();
    EXPECT_DOUBLE_EQ(s1.meanReturn, s2.meanReturn);
    EXPECT_DOUBLE_EQ(s1.policyLoss, s2.policyLoss);
}

TEST(Ppo, TrainsThroughFourStreamVecEnv)
{
    auto vec = makeBanditVec<SyncVecEnv>(4, 100);
    PpoConfig cfg;
    cfg.seed = 13;
    cfg.stepsPerEpoch = 2000;
    PpoTrainer trainer(*vec, cfg);
    EXPECT_EQ(trainer.numStreams(), 4u);
    const int epoch = trainer.trainUntil(0.99, 10, 200);
    EXPECT_GT(epoch, 0) << "4-stream bandit did not converge";
    // One epoch splits its 2000 steps across the 4 streams.
    EXPECT_EQ(trainer.totalEnvSteps() % 2000, 0);
}

TEST(Ppo, ThreadedCollectionMatchesSync)
{
    PpoConfig cfg;
    cfg.seed = 15;
    cfg.stepsPerEpoch = 800;

    auto sync_vec = makeBanditVec<SyncVecEnv>(4, 300);
    auto threaded_vec = makeBanditVec<ThreadedVecEnv>(4, 300);
    PpoTrainer sync_trainer(*sync_vec, cfg);
    PpoTrainer threaded_trainer(*threaded_vec, cfg);

    for (int e = 0; e < 3; ++e) {
        const EpochStats a = sync_trainer.runEpoch();
        const EpochStats b = threaded_trainer.runEpoch();
        EXPECT_DOUBLE_EQ(a.meanReturn, b.meanReturn);
        EXPECT_DOUBLE_EQ(a.policyLoss, b.policyLoss);
        EXPECT_DOUBLE_EQ(a.valueLoss, b.valueLoss);
    }
}

TEST(Ppo, CurriculumAcrossVecEnvs)
{
    auto stage1 = makeBanditVec<SyncVecEnv>(2, 500);
    auto stage2 = makeBanditVec<SyncVecEnv>(4, 600);
    PpoConfig cfg;
    cfg.seed = 17;
    cfg.stepsPerEpoch = 400;
    PpoTrainer trainer(*stage1, cfg);
    trainer.runEpoch();
    trainer.setVecEnv(*stage2);
    EXPECT_EQ(trainer.numStreams(), 4u);
    const EpochStats stats = trainer.runEpoch();
    EXPECT_GT(stats.entropy, 0.0);

    // Dimension mismatches are rejected.
    ProbeEnv probe;
    SyncVecEnv probe_vec(probe);
    EXPECT_THROW(trainer.setVecEnv(probe_vec), std::invalid_argument);
}

} // namespace
} // namespace autocat
