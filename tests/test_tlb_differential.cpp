/**
 * @file
 * Differential test: Tlb vs an independently written naive oracle.
 *
 * The oracle restates the documented TLB semantics (cache/tlb.hpp:
 * set-associative translations, root->leaf page walk on miss with one
 * small LRU page-walk cache per level, invlpg dropping only the leaf
 * translation) over the simplest possible structures — a plain
 * recency-ordered entry list per set (front = oldest) — with none of
 * the engine's flattened replacement metadata or CacheSet machinery.
 * Both models are driven with ~100k seeded random operations per
 * configuration (lookups from both domains, page flushes, occasional
 * full resets) and must agree on every observable:
 *
 *  - the TlbLookupResult of every lookup (hit, walkedLevels, evicted,
 *    evictedPage, evictedOwner),
 *  - the flushPage() return,
 *  - the event stream (one DemandAccess per lookup, one Flush per
 *    flushPage — what the detector layer sees),
 *  - TLB residency and per-level PWC residency at checkpoints.
 *
 * Configurations vary ways, sets, walk depth, bits per level, and PWC
 * geometry, including the fully-associative extremes and a bit width
 * whose root-level shift exceeds 64 (the documented everything-shares-
 * prefix-0 case). LRU everywhere: the point is the walk and the
 * replacement bookkeeping, not stochastic policies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cache/tlb.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

constexpr int kOpsPerConfig = 100000;

// ------------------------------------------------------------- oracle --

/** Observable event, mirroring CacheEvent's payload. */
struct OracleEvent
{
    CacheOp op = CacheOp::DemandAccess;
    Domain domain = Domain::Attacker;
    std::uint64_t addr = 0;
    std::uint64_t setIndex = 0;
    bool hit = false;
    bool evicted = false;
    std::uint64_t evictedAddr = 0;
    Domain evictedOwner = Domain::Attacker;

    bool
    operator==(const OracleEvent &o) const
    {
        return op == o.op && domain == o.domain && addr == o.addr &&
               setIndex == o.setIndex && hit == o.hit &&
               evicted == o.evicted && evictedAddr == o.evictedAddr &&
               evictedOwner == o.evictedOwner;
    }
};

OracleEvent
fromEngine(const CacheEvent &ev)
{
    OracleEvent out;
    out.op = ev.op;
    out.domain = ev.domain;
    out.addr = ev.addr;
    out.setIndex = ev.setIndex;
    out.hit = ev.hit;
    out.evicted = ev.evicted;
    out.evictedAddr = ev.evictedAddr;
    out.evictedOwner = ev.evictedOwner;
    return out;
}

/**
 * Naive set-associative LRU store: each set is a recency-ordered list
 * of entries, front = oldest. A hit moves the entry to the back; a
 * miss appends, evicting the front when the set is full. Under LRU the
 * physical way an entry occupies never affects an observable, so the
 * list IS the whole model.
 */
class OracleLruStore
{
  public:
    OracleLruStore(unsigned sets, unsigned ways)
        : num_sets_(sets), ways_(ways), sets_(sets)
    {
    }

    std::uint64_t setOf(std::uint64_t key) const { return key % num_sets_; }

    struct Touch
    {
        bool hit = false;
        bool evicted = false;
        std::uint64_t evictedKey = 0;
        Domain evictedOwner = Domain::Attacker;
    };

    Touch
    access(std::uint64_t key, Domain domain)
    {
        auto &entries = sets_[setOf(key)];
        Touch out;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].key == key) {
                out.hit = true;
                Entry e = entries[i];
                e.owner = domain;
                entries.erase(entries.begin() +
                              static_cast<std::ptrdiff_t>(i));
                entries.push_back(e);
                return out;
            }
        }
        if (entries.size() == ways_) {
            out.evicted = true;
            out.evictedKey = entries.front().key;
            out.evictedOwner = entries.front().owner;
            entries.erase(entries.begin());
        }
        entries.push_back({key, domain});
        return out;
    }

    bool
    invalidate(std::uint64_t key)
    {
        auto &entries = sets_[setOf(key)];
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].key == key) {
                entries.erase(entries.begin() +
                              static_cast<std::ptrdiff_t>(i));
                return true;
            }
        }
        return false;
    }

    bool
    contains(std::uint64_t key) const
    {
        const auto &entries = sets_[setOf(key)];
        return std::any_of(entries.begin(), entries.end(),
                           [&](const Entry &e) { return e.key == key; });
    }

    void
    clear()
    {
        for (auto &entries : sets_)
            entries.clear();
    }

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        Domain owner = Domain::Attacker;
    };

    unsigned num_sets_, ways_;
    std::vector<std::vector<Entry>> sets_;  ///< front = oldest
};

/** Naive TLB + page walk, emitting the same events as the engine. */
class OracleTlb
{
  public:
    explicit OracleTlb(const TlbConfig &config)
        : config_(config), tlb_(config.numSets, config.numWays)
    {
        for (unsigned k = 0; k < config.walkLevels; ++k)
            pwcs_.emplace_back(config.pwcSets, config.pwcWays);
    }

    const std::vector<OracleEvent> &events() const { return events_; }

    std::uint64_t
    prefixOf(unsigned level, std::uint64_t page) const
    {
        const unsigned shift =
            config_.levelBits * (config_.walkLevels - level);
        return shift >= 64 ? 0 : page >> shift;
    }

    TlbLookupResult
    lookup(std::uint64_t page, Domain domain)
    {
        const OracleLruStore::Touch res = tlb_.access(page, domain);
        TlbLookupResult out;
        out.hit = res.hit;
        out.evicted = res.evicted;
        out.evictedPage = res.evictedKey;
        out.evictedOwner = res.evictedOwner;

        if (!res.hit) {
            for (unsigned k = 0; k < config_.walkLevels; ++k) {
                if (!pwcs_[k].access(prefixOf(k, page), domain).hit)
                    ++out.walkedLevels;
            }
        }

        OracleEvent ev;
        ev.op = CacheOp::DemandAccess;
        ev.domain = domain;
        ev.addr = page;
        ev.setIndex = tlb_.setOf(page);
        ev.hit = res.hit;
        ev.evicted = res.evicted;
        ev.evictedAddr = res.evictedKey;
        ev.evictedOwner = res.evictedOwner;
        events_.push_back(ev);
        return out;
    }

    bool
    flushPage(std::uint64_t page, Domain domain)
    {
        const bool dropped = tlb_.invalidate(page);
        OracleEvent ev;
        ev.op = CacheOp::Flush;
        ev.domain = domain;
        ev.addr = page;
        ev.setIndex = tlb_.setOf(page);
        ev.hit = dropped;
        events_.push_back(ev);
        return dropped;
    }

    bool contains(std::uint64_t page) const { return tlb_.contains(page); }

    bool
    pwcContains(unsigned level, std::uint64_t prefix) const
    {
        return pwcs_[level].contains(prefix);
    }

    void
    reset()
    {
        tlb_.clear();
        for (auto &pwc : pwcs_)
            pwc.clear();
    }

  private:
    TlbConfig config_;
    OracleLruStore tlb_;
    std::vector<OracleLruStore> pwcs_;
    std::vector<OracleEvent> events_;
};

// ------------------------------------------------------ the differential

std::string
describeEvent(const OracleEvent &ev)
{
    std::string s = "op=" + std::to_string(static_cast<int>(ev.op)) +
                    " dom=" + std::to_string(static_cast<int>(ev.domain)) +
                    " page=" + std::to_string(ev.addr) +
                    " set=" + std::to_string(ev.setIndex) +
                    " hit=" + std::to_string(ev.hit) +
                    " evicted=" + std::to_string(ev.evicted);
    if (ev.evicted)
        s += " evictedPage=" + std::to_string(ev.evictedAddr) + " owner=" +
             std::to_string(static_cast<int>(ev.evictedOwner));
    return s;
}

void
runDifferential(const TlbConfig &config, const std::string &name,
                std::uint64_t seed)
{
    Tlb engine(config);
    OracleTlb oracle(config);

    std::vector<OracleEvent> engine_events;
    engine.setEventListener([&engine_events](const CacheEvent &ev) {
        engine_events.push_back(fromEngine(ev));
    });

    Rng rng(seed);
    std::size_t compared_events = 0;
    for (int i = 0; i < kOpsPerConfig; ++i) {
        const std::uint64_t page =
            rng.uniformInt(config.addressSpaceSize);
        const Domain domain =
            rng.uniformInt(2) == 0 ? Domain::Attacker : Domain::Victim;
        const std::uint64_t op = rng.uniformInt(100);

        if (op < 85) {
            const TlbLookupResult got = engine.lookup(page, domain);
            const TlbLookupResult want = oracle.lookup(page, domain);
            ASSERT_EQ(got.hit, want.hit)
                << name << ": op " << i << " page " << page;
            ASSERT_EQ(got.walkedLevels, want.walkedLevels)
                << name << ": op " << i << " page " << page;
            ASSERT_EQ(got.evicted, want.evicted)
                << name << ": op " << i << " page " << page;
            if (want.evicted) {
                ASSERT_EQ(got.evictedPage, want.evictedPage)
                    << name << ": op " << i << " page " << page;
                ASSERT_EQ(got.evictedOwner, want.evictedOwner)
                    << name << ": op " << i << " page " << page;
            }
        } else if (op < 99) {
            ASSERT_EQ(engine.flushPage(page, domain),
                      oracle.flushPage(page, domain))
                << name << ": op " << i << " flush page " << page;
        } else {
            engine.reset();
            oracle.reset();
        }

        // Event streams must stay in lock-step (count and payload).
        const auto &want_events = oracle.events();
        ASSERT_EQ(engine_events.size(), want_events.size())
            << name << ": event count diverged after op " << i;
        for (; compared_events < engine_events.size();
             ++compared_events) {
            ASSERT_TRUE(engine_events[compared_events] ==
                        want_events[compared_events])
                << name << ": event " << compared_events << " after op "
                << i << "\n  engine: "
                << describeEvent(engine_events[compared_events])
                << "\n  oracle: "
                << describeEvent(want_events[compared_events]);
        }

        if (i % 10000 == 0 || i + 1 == kOpsPerConfig) {
            for (std::uint64_t p = 0; p < config.addressSpaceSize; ++p) {
                ASSERT_EQ(engine.contains(p), oracle.contains(p))
                    << name << ": residency of page " << p << " after op "
                    << i;
                for (unsigned k = 0; k < config.walkLevels; ++k) {
                    const std::uint64_t prefix = engine.walkPrefix(k, p);
                    ASSERT_EQ(prefix, oracle.prefixOf(k, p))
                        << name << ": prefix of page " << p << " level "
                        << k;
                    ASSERT_EQ(engine.pwcContains(k, prefix),
                              oracle.pwcContains(k, prefix))
                        << name << ": PWC residency, level " << k
                        << " prefix " << prefix << " after op " << i;
                }
            }
        }
    }
}

TlbConfig
makeConfig(unsigned sets, unsigned ways, unsigned walk_levels,
           unsigned level_bits, unsigned pwc_sets, unsigned pwc_ways,
           std::uint64_t space)
{
    TlbConfig cfg;
    cfg.numSets = sets;
    cfg.numWays = ways;
    cfg.policy = ReplPolicy::Lru;
    cfg.walkLevels = walk_levels;
    cfg.levelBits = level_bits;
    cfg.pwcSets = pwc_sets;
    cfg.pwcWays = pwc_ways;
    cfg.addressSpaceSize = space;
    return cfg;
}

TEST(TlbDifferential, FullyAssociativeSingleLevelWalk)
{
    runDifferential(makeConfig(1, 4, 1, 4, 1, 2, 32), "fa-1lvl", 101);
}

TEST(TlbDifferential, SmallTwoLevelWalk)
{
    runDifferential(makeConfig(2, 2, 2, 2, 1, 2, 48), "2x2-2lvl", 202);
}

TEST(TlbDifferential, WiderSetsSetIndexedPwc)
{
    runDifferential(makeConfig(4, 2, 2, 3, 2, 2, 64), "4x2-pwc2x2", 303);
}

TEST(TlbDifferential, DeepWalkHighAssociativity)
{
    runDifferential(makeConfig(2, 4, 3, 2, 2, 2, 64), "2x4-3lvl", 404);
}

TEST(TlbDifferential, DirectMappedSingleEntryPwc)
{
    runDifferential(makeConfig(8, 1, 4, 1, 1, 1, 64), "8x1-4lvl", 505);
}

TEST(TlbDifferential, RootShiftBeyondWordWidth)
{
    // levelBits * walkLevels = 66 at the root: the documented shift>=64
    // case, where every page shares the root prefix 0.
    runDifferential(makeConfig(4, 4, 3, 22, 2, 2, 96), "wide-bits", 606);
}

TEST(TlbDifferential, FullyAssociativeEverything)
{
    runDifferential(makeConfig(1, 8, 2, 2, 1, 1, 40), "fa-all", 707);
}

// ------------------------------------------------------- unit checks --

TEST(Tlb, FlushDropsLeafButKeepsWalkCaches)
{
    TlbConfig cfg = makeConfig(2, 2, 2, 2, 1, 4, 16);
    Tlb tlb(cfg);

    // Cold lookup: misses the TLB, walks both levels to memory.
    const TlbLookupResult cold = tlb.lookup(5, Domain::Attacker);
    EXPECT_FALSE(cold.hit);
    EXPECT_EQ(cold.walkedLevels, 2u);

    EXPECT_TRUE(tlb.contains(5));
    EXPECT_TRUE(tlb.flushPage(5, Domain::Attacker));
    EXPECT_FALSE(tlb.contains(5));
    EXPECT_FALSE(tlb.flushPage(5, Domain::Attacker));

    // invlpg kept the paging-structure caches: the re-walk is free.
    const TlbLookupResult warm = tlb.lookup(5, Domain::Attacker);
    EXPECT_FALSE(warm.hit);
    EXPECT_EQ(warm.walkedLevels, 0u);

    // reset() drops the PWCs too: the walk pays full price again.
    tlb.reset();
    const TlbLookupResult after_reset = tlb.lookup(5, Domain::Attacker);
    EXPECT_FALSE(after_reset.hit);
    EXPECT_EQ(after_reset.walkedLevels, 2u);
}

TEST(Tlb, SharedPrefixesMakePartialWalksCheaper)
{
    // levelBits=2, walkLevels=2: level-0 (root) prefixes group pages
    // 16 apart (page >> 4), level-1 prefixes group pages 4 apart
    // (page >> 2).
    TlbConfig cfg = makeConfig(1, 1, 2, 2, 1, 4, 32);
    Tlb tlb(cfg);

    EXPECT_EQ(tlb.lookup(0, Domain::Attacker).walkedLevels, 2u);
    // Page 1 shares both prefixes with page 0: the 1-way TLB evicted
    // page 0, but the whole walk is PWC-resident.
    EXPECT_EQ(tlb.lookup(1, Domain::Attacker).walkedLevels, 0u);
    // Page 1 again: now a TLB hit, no walk at all.
    EXPECT_EQ(tlb.lookup(1, Domain::Attacker).walkedLevels, 0u);
    // Page 4 shares only the root prefix: one level goes to memory.
    EXPECT_EQ(tlb.lookup(4, Domain::Attacker).walkedLevels, 1u);
    // Page 16 shares nothing: full walk again.
    EXPECT_EQ(tlb.lookup(16, Domain::Attacker).walkedLevels, 2u);
}

TEST(Tlb, RejectsDegenerateGeometry)
{
    EXPECT_THROW(Tlb(makeConfig(0, 2, 2, 2, 1, 2, 16)),
                 std::invalid_argument);
    EXPECT_THROW(Tlb(makeConfig(2, 0, 2, 2, 1, 2, 16)),
                 std::invalid_argument);
    EXPECT_THROW(Tlb(makeConfig(2, 2, 0, 2, 1, 2, 16)),
                 std::invalid_argument);
    EXPECT_THROW(Tlb(makeConfig(2, 2, 2, 0, 1, 2, 16)),
                 std::invalid_argument);
    EXPECT_THROW(Tlb(makeConfig(2, 2, 2, 2, 0, 2, 16)),
                 std::invalid_argument);
    EXPECT_THROW(Tlb(makeConfig(2, 2, 2, 2, 1, 0, 16)),
                 std::invalid_argument);
}

} // namespace
} // namespace autocat
