/**
 * @file
 * Networked campaign service tests: the ACNF frame layer (round
 * trips, partial reads, fuzzing truncation/corruption), the
 * crash-safe grid manifest (re-entry, identity keying, recovery from
 * torn state), graceful SIGTERM in the runner, and the full
 * daemon-fleet scheduler — all pinned against the byte-identity
 * oracle: a grid sharded across 3 TCP runner daemons, with one daemon
 * SIGKILLed mid-cell AND the scheduler itself killed and restarted
 * from the manifest, must render the exact same report as `workers=1`
 * in-process.
 *
 * Fleet tests spawn the real cell_runner / runner_daemon executables,
 * located via the AUTOCAT_CELL_RUNNER / AUTOCAT_RUNNER_DAEMON
 * environment variables (set by CTest); they skip when absent.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "eval/report.hpp"
#include "eval/sweep.hpp"
#include "eval/sweep_config.hpp"
#include "serve/cell_exec.hpp"
#include "serve/dist_scheduler.hpp"
#include "serve/gateway/campaign_gateway.hpp"
#include "serve/manifest/manifest.hpp"
#include "serve/net/frame.hpp"
#include "serve/wire.hpp"
#include "util/atomic_file.hpp"
#include "util/binio.hpp"
#include "util/socket.hpp"

namespace autocat {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory under the system temp root. */
fs::path
scratchDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() /
                         ("autocat_net_" + name + "_" +
                          std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Same tiny 4-cell grid test_dist pins its oracle on. */
SweepConfig
tinyNetSweep()
{
    SweepConfig cfg;
    cfg.name = "tiny-net";
    cfg.base.env.cache.numSets = 1;
    cfg.base.env.cache.numWays = 2;
    cfg.base.env.cache.addressSpaceSize = 6;
    cfg.base.env.attackAddrS = 0;
    cfg.base.env.attackAddrE = 2;
    cfg.base.env.victimAddrS = 0;
    cfg.base.env.victimAddrE = 0;
    cfg.base.env.victimNoAccessEnable = true;
    cfg.base.env.windowSize = 8;
    cfg.base.ppo.stepsPerEpoch = 200;
    cfg.base.ppo.minibatchSize = 100;
    cfg.base.maxEpochs = 2;
    cfg.base.evalEpisodes = 5;
    cfg.grid.scenarios = {"guessing_game", "l1l2_private"};
    cfg.grid.policies = {ReplPolicy::Lru, ReplPolicy::TreePlru};
    cfg.grid.seeds = {5};
    return cfg;
}

std::string
runnerPath()
{
    const char *p = std::getenv("AUTOCAT_CELL_RUNNER");
    return p ? p : "";
}

std::string
daemonPath()
{
    const char *p = std::getenv("AUTOCAT_RUNNER_DAEMON");
    return p ? p : "";
}

/** fork/exec a child with argv @p args; returns its pid. */
pid_t
spawnChild(const std::vector<std::string> &args)
{
    std::vector<std::string> owned = args;
    std::vector<char *> argv;
    for (std::string &a : owned)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    return pid;
}

/** One spawned runner_daemon plus its discovered ephemeral port. */
struct DaemonProc
{
    pid_t pid = -1;
    std::uint16_t port = 0;

    std::string
    endpoint() const
    {
        return "127.0.0.1:" + std::to_string(port);
    }
};

/** Spawn a daemon on an ephemeral port and wait for the port file. */
DaemonProc
spawnDaemon(const fs::path &root, const std::string &name,
            const std::vector<std::string> &extra_args = {})
{
    const std::string port_file = (root / (name + ".port")).string();
    std::vector<std::string> args = {
        daemonPath(), "--port",      "0",
        "--port-file", port_file,    "--work-dir",
        (root / name).string(),
    };
    args.insert(args.end(), extra_args.begin(), extra_args.end());

    DaemonProc daemon;
    daemon.pid = spawnChild(args);
    for (int i = 0; i < 1000 && !fs::exists(port_file); ++i)
        ::usleep(10 * 1000);
    if (!fs::exists(port_file))
        throw std::runtime_error("daemon never published its port");
    daemon.port = static_cast<std::uint16_t>(
        std::stoi(readWholeFile(port_file, "port file")));
    return daemon;
}

void
reapDaemon(DaemonProc &daemon, int sig = SIGKILL)
{
    if (daemon.pid <= 0)
        return;
    ::kill(daemon.pid, sig);
    int status = 0;
    ::waitpid(daemon.pid, &status, 0);
    daemon.pid = -1;
}

// -------------------------------------------------------------- frames

TEST(NetFrame, RoundTripsEveryTypeThroughChunkedFeeds)
{
    const std::string binary_payload("\x00\x01\xff""frame\n\x07", 9);
    std::string stream;
    stream += encodeFrame(FrameType::Hello, "hello-bytes");
    stream += encodeFrame(FrameType::Job, binary_payload);
    stream += encodeFrame(FrameType::Heartbeat, "");
    stream += encodeFrame(FrameType::Checkpoint,
                          std::string(10000, 'c'));
    stream += encodeFrame(FrameType::Row, "row");

    // Partial read() returns are the TCP norm: every chunking of the
    // same stream must yield the same frames.
    for (const std::size_t chunk : {1ul, 2ul, 3ul, 7ul, 4096ul}) {
        FrameReader reader;
        std::vector<Frame> frames;
        for (std::size_t off = 0; off < stream.size(); off += chunk) {
            reader.feed(stream.data() + off,
                        std::min(chunk, stream.size() - off));
            Frame f;
            while (reader.next(f))
                frames.push_back(f);
        }
        ASSERT_EQ(frames.size(), 5u) << "chunk " << chunk;
        EXPECT_TRUE(reader.error().empty());
        EXPECT_EQ(reader.buffered(), 0u);
        EXPECT_EQ(frames[0].type, FrameType::Hello);
        EXPECT_EQ(frames[0].payload, "hello-bytes");
        EXPECT_EQ(frames[1].type, FrameType::Job);
        EXPECT_EQ(frames[1].payload, binary_payload);
        EXPECT_EQ(frames[2].type, FrameType::Heartbeat);
        EXPECT_TRUE(frames[2].payload.empty());
        EXPECT_EQ(frames[3].payload.size(), 10000u);
        EXPECT_EQ(frames[4].type, FrameType::Row);
    }
}

TEST(NetFrame, HelloPayloadRoundTrips)
{
    HelloPayload hello;
    hello.protocolVersion = 1;
    hello.jobWireVersion = kCellJobVersion;
    hello.rowWireVersion = kCellRowVersion;
    hello.checkpointEvery = 3;
    const HelloPayload back = decodeHello(encodeHello(hello));
    EXPECT_EQ(back.protocolVersion, 1u);
    EXPECT_EQ(back.jobWireVersion, kCellJobVersion);
    EXPECT_EQ(back.rowWireVersion, kCellRowVersion);
    EXPECT_EQ(back.checkpointEvery, 3);
    EXPECT_THROW(decodeHello("short"), std::runtime_error);
    EXPECT_THROW(decodeHello(encodeHello(hello) + "x"),
                 std::runtime_error);
}

TEST(NetFrame, FuzzTruncationNeverYieldsAPhantomFrame)
{
    std::string stream;
    stream += encodeFrame(FrameType::Job, "abcdefg");
    stream += encodeFrame(FrameType::Row, "0123456789");

    // Every prefix decodes at most the frames whose bytes are fully
    // present, never errors, never fabricates.
    const std::size_t first_total = encodeFrame(FrameType::Job,
                                                "abcdefg")
                                        .size();
    for (std::size_t len = 0; len < stream.size(); ++len) {
        FrameReader reader;
        reader.feed(stream.data(), len);
        Frame f;
        std::size_t got = 0;
        while (reader.next(f))
            ++got;
        EXPECT_TRUE(reader.error().empty()) << "len " << len;
        EXPECT_EQ(got, len >= first_total ? 1u : 0u) << "len " << len;
    }
}

TEST(NetFrame, FuzzEveryCorruptByteIsRejectedNotCrashed)
{
    const std::string stream = encodeFrame(FrameType::Job, "payload!");
    for (std::size_t i = 0; i < stream.size(); ++i) {
        std::string bad = stream;
        bad[i] = static_cast<char>(bad[i] ^ 0x20);
        FrameReader reader;
        reader.feed(bad.data(), bad.size());
        Frame f;
        // No flip may ever yield a frame: every byte is covered by
        // magic, type range, size bound, or the payload checksum.
        ASSERT_FALSE(reader.next(f)) << "corrupt byte " << i;
        const bool in_size_field = i >= 8 && i < 16;
        if (!in_size_field) {
            EXPECT_FALSE(reader.error().empty()) << "byte " << i;
            // Sticky: feeding good bytes must not revive the stream
            // (frame boundaries are unrecoverable).
            reader.feed(stream.data(), stream.size());
            EXPECT_FALSE(reader.next(f));
        } else if (reader.error().empty()) {
            // A flipped length byte that stays under the cap leaves
            // the reader waiting for payload that never arrives; the
            // connection owner sees EOF mid-frame and treats it as a
            // death. The reader must be starving, not mis-framing.
            EXPECT_EQ(reader.buffered(), bad.size());
        }
    }
}

TEST(NetFrame, ImplausibleSizeFailsFastWithoutThePayload)
{
    // A corrupt length field must fail on the HEADER, not stall the
    // connection waiting for garbage bytes that never arrive.
    std::string header;
    binPut(header, 0x464e4341u); // 'ACNF'
    binPut(header, static_cast<std::uint32_t>(FrameType::Job));
    binPut(header, kMaxFramePayload + 1);
    FrameReader reader;
    reader.feed(header.data(), header.size());
    Frame f;
    EXPECT_FALSE(reader.next(f));
    EXPECT_NE(reader.error().find("implausible"), std::string::npos)
        << reader.error();

    // Unknown type and bad magic fail the same fast way.
    FrameReader r2;
    std::string bad_type;
    binPut(bad_type, 0x464e4341u);
    binPut(bad_type, 99u);
    binPut(bad_type, std::uint64_t{0});
    r2.feed(bad_type.data(), bad_type.size());
    EXPECT_FALSE(r2.next(f));
    EXPECT_NE(r2.error().find("unknown frame type"), std::string::npos);

    FrameReader r3;
    const std::string junk = "this is not a frame stream at all";
    r3.feed(junk.data(), junk.size());
    EXPECT_FALSE(r3.next(f));
    EXPECT_NE(r3.error().find("bad magic"), std::string::npos);
}

// ------------------------------------------------------------ manifest

TEST(GridManifest, RecordReenterAdoptsVerbatimRows)
{
    const fs::path root = scratchDir("manifest_reenter");
    const std::vector<SweepCell> cells = expandSweepGrid(tinyNetSweep());
    std::vector<std::string> jobs;
    for (const SweepCell &cell : cells)
        jobs.push_back(serializeCellJob(cell));
    const std::uint64_t hash = gridManifestHash(jobs);

    SweepCellResult row;
    row.cell = cells[1];
    row.completed = true;
    row.result.converged = true;
    const std::string row_bytes = serializeCellRow(row);

    {
        GridManifest manifest((root / "m").string(), "tiny-net", hash,
                              cells.size(), false);
        EXPECT_EQ(manifest.numDone(), 0u);
        manifest.recordRow(1, row_bytes);
        manifest.recordFailedAttempt(3);
        manifest.recordFailedAttempt(3);
    }
    // A fresh process re-enters: the finished cell adopts (bytes
    // verbatim on disk), the failed-attempt budget persists.
    GridManifest manifest((root / "m").string(), "tiny-net", hash,
                          cells.size(), false);
    EXPECT_EQ(manifest.numDone(), 1u);
    EXPECT_TRUE(manifest.cells()[1].done);
    EXPECT_TRUE(manifest.cells()[1].row.completed);
    EXPECT_EQ(manifest.cells()[1].row.cell.index, 1u);
    EXPECT_EQ(readWholeFile(manifest.rowPath(1), "row"), row_bytes);
    EXPECT_EQ(manifest.cells()[3].failedAttempts, 2);
    EXPECT_FALSE(manifest.cells()[3].done);
    fs::remove_all(root);
}

TEST(GridManifest, RefusesAForeignGridUnlessReset)
{
    const fs::path root = scratchDir("manifest_foreign");
    const std::string dir = (root / "m").string();
    {
        GridManifest manifest(dir, "grid-a", 111, 4, false);
        SweepCellResult row;
        row.cell.index = 0;
        manifest.recordRow(0, serializeCellRow(row));
    }
    // Different grid hash: refuse (silent mixing of two experiments'
    // rows is the failure mode this guards).
    EXPECT_THROW(GridManifest(dir, "grid-b", 222, 4, false),
                 std::invalid_argument);
    // Different cell count, same refusal.
    EXPECT_THROW(GridManifest(dir, "grid-a", 111, 5, false),
                 std::invalid_argument);
    // reset wipes and starts fresh.
    GridManifest manifest(dir, "grid-b", 222, 4, true);
    EXPECT_EQ(manifest.numDone(), 0u);
    EXPECT_FALSE(fs::exists(manifest.rowPath(0)));
    fs::remove_all(root);
}

TEST(GridManifest, TornStateAndCorruptRowsDemoteNotCrash)
{
    const fs::path root = scratchDir("manifest_torn");
    const std::string dir = (root / "m").string();
    SweepCellResult row;
    row.cell.index = 2;
    const std::string row_bytes = serializeCellRow(row);
    {
        GridManifest manifest(dir, "g", 7, 4, false);
        manifest.recordRow(2, row_bytes);
    }
    // Corrupt the row blob: its cell must demote to pending on
    // re-entry (and the bad file must be cleared), not crash or adopt.
    atomicWriteFile(dir + "/row_2.blob", "garbage", "row");
    {
        GridManifest manifest(dir, "g", 7, 4, false);
        EXPECT_EQ(manifest.numDone(), 0u);
        EXPECT_FALSE(fs::exists(dir + "/row_2.blob"));
        manifest.recordRow(2, row_bytes);
    }
    // Torn state file: progress is discarded (rows cannot be trusted
    // without a grid identity), the manifest starts fresh.
    atomicWriteFile(dir + "/manifest.state", "half-writ", "state");
    GridManifest manifest(dir, "g", 7, 4, false);
    EXPECT_EQ(manifest.numDone(), 0u);
    fs::remove_all(root);
}

TEST(GridManifest, RowBlobAloneMarksDone)
{
    // Crash ordering contract: the row is written before the state.
    // A manifest whose state never recorded the row must still adopt
    // it (the row blob is authoritative).
    const fs::path root = scratchDir("manifest_roworder");
    const std::string dir = (root / "m").string();
    SweepCellResult row;
    row.cell.index = 1;
    {
        GridManifest manifest(dir, "g", 9, 3, false);
        // Simulate the crash window: row on disk, state not updated.
        atomicWriteFile(dir + "/row_1.blob", serializeCellRow(row),
                        "row");
    }
    GridManifest manifest(dir, "g", 9, 3, false);
    EXPECT_EQ(manifest.numDone(), 1u);
    EXPECT_TRUE(manifest.cells()[1].done);
    fs::remove_all(root);
}

// ------------------------------------------------------- config keys

TEST(NetConfig, NewKeysRoundTripAndValidate)
{
    SweepConfig cfg = tinyNetSweep();
    cfg.distEndpoints = {"127.0.0.1:7001", "localhost:7002"};
    cfg.manifestDir = "state/manifest";
    cfg.manifestReset = true;
    cfg.gatewayTenant = "alice";
    cfg.gatewayPriority = 7;

    const SweepConfig back = parseSweepConfig(renderSweepConfig(cfg));
    ASSERT_EQ(back.distEndpoints.size(), 2u);
    EXPECT_EQ(back.distEndpoints[0], "127.0.0.1:7001");
    EXPECT_EQ(back.distEndpoints[1], "localhost:7002");
    EXPECT_EQ(back.manifestDir, "state/manifest");
    EXPECT_TRUE(back.manifestReset);
    EXPECT_EQ(back.gatewayTenant, "alice");
    EXPECT_EQ(back.gatewayPriority, 7);
    // Render->parse->render is a fixed point for the new keys too.
    EXPECT_EQ(renderSweepConfig(back), renderSweepConfig(cfg));

    // Endpoints are validated at parse time, not first connect.
    EXPECT_THROW(parseSweepConfig(std::string(
                     "sweep.dist_endpoints = not-an-endpoint\n")),
                 std::invalid_argument);
    EXPECT_THROW(parseSweepConfig(std::string(
                     "sweep.dist_endpoints = 127.0.0.1:99999\n")),
                 std::invalid_argument);
    // stopAfterCells is CLI-only, never a config key.
    EXPECT_THROW(
        parseSweepConfig(std::string("sweep.stop_after_cells = 1\n")),
        std::invalid_argument);
}

TEST(NetConfig, EndpointParsing)
{
    const TcpEndpoint e = parseTcpEndpoint("127.0.0.1:4417");
    EXPECT_EQ(e.host, "127.0.0.1");
    EXPECT_EQ(e.port, 4417);
    EXPECT_EQ(e.toString(), "127.0.0.1:4417");
    EXPECT_EQ(parseTcpEndpoint("localhost:1").host, "localhost");
    EXPECT_THROW(parseTcpEndpoint("no-colon"), std::invalid_argument);
    EXPECT_THROW(parseTcpEndpoint("h:"), std::invalid_argument);
    EXPECT_THROW(parseTcpEndpoint(":80"), std::invalid_argument);
    EXPECT_THROW(parseTcpEndpoint("h:0x50"), std::invalid_argument);
    EXPECT_THROW(parseTcpEndpoint("h:70000"), std::invalid_argument);
}

// ------------------------------------------------- graceful SIGTERM

TEST(RunnerSigterm, ExitsRetryableWithDurableCheckpoint)
{
    if (runnerPath().empty())
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";
    const fs::path root = scratchDir("sigterm");

    const std::vector<SweepCell> cells = expandSweepGrid(tinyNetSweep());
    const std::string job = (root / "job.blob").string();
    const std::string row = (root / "row.blob").string();
    const std::string ckpt = (root / "cell.ckpt").string();
    atomicWriteFile(job, serializeCellJob(cells[0]), "job");

    // The chaos flag SIGTERMs the runner right after its first
    // checkpoint write: it must exit with the dedicated retryable
    // code, leaving the checkpoint durable and NO row.
    const pid_t pid = spawnChild({runnerPath(), job, row,
                                  "--checkpoint", ckpt,
                                  "--checkpoint-every", "1",
                                  "--chaos-sigterm-after", "1"});
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), kRunnerExitSigterm);
    EXPECT_FALSE(fs::exists(row));
    ASSERT_TRUE(fs::exists(ckpt));

    // The retry resumes from that checkpoint and must produce the
    // same row bytes as an uninterrupted run.
    const pid_t retry = spawnChild({runnerPath(), job, row,
                                    "--checkpoint", ckpt,
                                    "--checkpoint-every", "1"});
    ASSERT_EQ(::waitpid(retry, &status, 0), retry);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    const std::string clean_row = (root / "clean_row.blob").string();
    const std::string clean_ckpt = (root / "clean.ckpt").string();
    const pid_t clean = spawnChild({runnerPath(), job, clean_row,
                                    "--checkpoint", clean_ckpt,
                                    "--checkpoint-every", "1"});
    ASSERT_EQ(::waitpid(clean, &status, 0), clean);
    EXPECT_EQ(WEXITSTATUS(status), 0);
    // Row blobs embed wall time, so compare the deterministic report
    // rendering, not the raw bytes.
    const auto asReport = [](const std::string &path) {
        SweepReport report;
        report.name = "one";
        report.cells.push_back(
            deserializeCellRow(readWholeFile(path, "row")));
        return sweepReportJson(report, {});
    };
    EXPECT_EQ(asReport(row), asReport(clean_row));
    fs::remove_all(root);
}

TEST(RunnerSigterm, SchedulerRetriesASigtermedWorker)
{
    if (runnerPath().empty())
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";
    const fs::path root = scratchDir("sigterm_sched");

    std::vector<SweepCell> cells = expandSweepGrid(tinyNetSweep());
    cells.resize(2);
    DistSweepOptions opts;
    opts.processes = 2;
    opts.runnerPath = runnerPath();
    opts.workDir = (root / "work").string();
    opts.checkpointDir = (root / "ckpt").string();
    opts.checkpointEvery = 1;
    opts.chaosKillCell = 1;
    opts.chaosKillAfter = 1;
    opts.chaosSigterm = true; // graceful exit instead of SIGKILL

    const SweepReport report = runSweepCellsDist("st", cells, opts);
    ASSERT_EQ(report.cells.size(), 2u);
    EXPECT_TRUE(report.cells[1].completed) << report.cells[1].error;
    EXPECT_EQ(report.cells[1].attempts, 2);
    EXPECT_EQ(report.cells[0].attempts, 1);
    fs::remove_all(root);
}

TEST(DaemonSigterm, IdleDaemonExitsCleanly)
{
    if (daemonPath().empty())
        GTEST_SKIP() << "AUTOCAT_RUNNER_DAEMON not set";
    const fs::path root = scratchDir("daemon_sigterm");
    DaemonProc daemon = spawnDaemon(root, "d");
    ::kill(daemon.pid, SIGTERM);
    int status = 0;
    ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
    daemon.pid = -1;
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    fs::remove_all(root);
}

// ------------------------------------------------- fleet scheduling

TEST(NetScheduler, DeadEndpointRetiresWithoutBurningRetries)
{
    if (runnerPath().empty())
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";
    const fs::path root = scratchDir("dead_endpoint");

    // Grab a port nothing listens on: bind an ephemeral listener and
    // close it again.
    std::uint16_t dead_port = 0;
    {
        OwnedFd listener = tcpListen(TcpEndpoint{}, dead_port);
        ASSERT_TRUE(listener.valid());
    }

    std::vector<SweepCell> cells = expandSweepGrid(tinyNetSweep());
    cells.resize(2);
    DistSweepOptions opts;
    opts.processes = 1;
    opts.runnerPath = runnerPath();
    opts.workDir = (root / "work").string();
    opts.endpoints = {"127.0.0.1:" + std::to_string(dead_port)};
    opts.maxRetries = 0; // any burned attempt would fail the cell

    const SweepReport report = runSweepCellsDist("dead", cells, opts);
    ASSERT_EQ(report.cells.size(), 2u);
    for (const SweepCellResult &cell : report.cells) {
        EXPECT_TRUE(cell.completed) << cell.error;
        EXPECT_EQ(cell.attempts, 1);
    }
    EXPECT_EQ(report.workersUsed, 2); // 1 local + 1 (retired) endpoint
    fs::remove_all(root);
}

TEST(NetScheduler, AllEndpointsDeadFailsLoudly)
{
    const fs::path root = scratchDir("all_dead");
    std::uint16_t dead_port = 0;
    {
        OwnedFd listener = tcpListen(TcpEndpoint{}, dead_port);
        ASSERT_TRUE(listener.valid());
    }
    std::vector<SweepCell> cells = expandSweepGrid(tinyNetSweep());
    cells.resize(1);
    DistSweepOptions opts;
    opts.processes = 0; // endpoint-only fleet
    opts.workDir = (root / "work").string();
    opts.endpoints = {"127.0.0.1:" + std::to_string(dead_port)};
    EXPECT_THROW(runSweepCellsDist("dead", cells, opts),
                 std::runtime_error);
    fs::remove_all(root);
}

/** Listen once, send @p payload to whoever connects, close. */
std::thread
evilDaemon(std::uint16_t &port, std::string payload)
{
    OwnedFd listener = tcpListen(TcpEndpoint{}, port);
    EXPECT_TRUE(listener.valid());
    return std::thread([fd = listener.release(),
                        payload = std::move(payload)] {
        OwnedFd owned(fd);
        OwnedFd conn = tcpAccept(owned.fd(), 20000);
        if (conn.valid() && !payload.empty())
            sendAll(conn.fd(), payload.data(), payload.size());
    });
}

TEST(NetScheduler, GarbageBeforeHandshakeRetiresEndpointForFree)
{
    if (runnerPath().empty())
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";
    const fs::path root = scratchDir("evil_prehello");

    std::uint16_t evil_port = 0;
    std::thread evil =
        evilDaemon(evil_port, "this is definitely not a frame stream");

    std::vector<SweepCell> cells = expandSweepGrid(tinyNetSweep());
    cells.resize(2);
    DistSweepOptions opts;
    opts.processes = 1;
    opts.runnerPath = runnerPath();
    opts.workDir = (root / "work").string();
    opts.endpoints = {"127.0.0.1:" + std::to_string(evil_port)};
    opts.maxRetries = 0; // malformed-before-handshake must be free

    const SweepReport report = runSweepCellsDist("evil", cells, opts);
    evil.join();
    for (const SweepCellResult &cell : report.cells) {
        EXPECT_TRUE(cell.completed) << cell.error;
        EXPECT_EQ(cell.attempts, 1);
    }
    fs::remove_all(root);
}

TEST(NetScheduler, MalformedFramesMidCellConsumeOneAttemptAndRequeue)
{
    if (runnerPath().empty())
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";
    const fs::path root = scratchDir("evil_midcell");

    // A protocol-correct handshake followed by stream corruption: the
    // scheduler must close, charge ONE attempt, requeue the cell to a
    // healthy slot, and keep the rest of the grid flowing.
    HelloPayload hello;
    hello.jobWireVersion = kCellJobVersion;
    hello.rowWireVersion = kCellRowVersion;
    std::string payload = encodeFrame(FrameType::Hello,
                                      encodeHello(hello));
    payload += "garbage garbage garbage garbage!";
    std::uint16_t evil_port = 0;
    std::thread evil = evilDaemon(evil_port, std::move(payload));

    std::vector<SweepCell> cells = expandSweepGrid(tinyNetSweep());
    cells.resize(2);
    DistSweepOptions opts;
    opts.processes = 1;
    opts.runnerPath = runnerPath();
    opts.workDir = (root / "work").string();
    opts.endpoints = {"127.0.0.1:" + std::to_string(evil_port)};
    opts.maxRetries = 1;

    const SweepReport report = runSweepCellsDist("evil2", cells, opts);
    evil.join();
    ASSERT_EQ(report.cells.size(), 2u);
    // Slot order is deterministic: local takes cell 0, evil takes
    // cell 1; the corrupted stream costs cell 1 exactly one attempt.
    EXPECT_TRUE(report.cells[1].completed) << report.cells[1].error;
    EXPECT_EQ(report.cells[1].attempts, 2);
    EXPECT_TRUE(report.cells[0].completed);
    EXPECT_EQ(report.cells[0].attempts, 1);
    fs::remove_all(root);
}

TEST(NetScheduler, MixedFleetMatchesLocalBytes)
{
    if (runnerPath().empty() || daemonPath().empty())
        GTEST_SKIP() << "runner/daemon not set";
    const fs::path root = scratchDir("mixed");

    const SweepConfig cfg = tinyNetSweep();
    const std::vector<SweepCell> cells = expandSweepGrid(cfg);
    const SweepReport local = runSweepCells(
        cfg.name, cells, 1, {}, (root / "local_ckpt").string(), 1);

    DaemonProc d0 = spawnDaemon(root, "d0");
    DaemonProc d1 = spawnDaemon(root, "d1");
    DistSweepOptions opts;
    opts.processes = 1; // 1 local slot + 2 daemons: a mixed fleet
    opts.runnerPath = runnerPath();
    opts.workDir = (root / "work").string();
    opts.checkpointDir = (root / "ckpt").string();
    opts.checkpointEvery = 1;
    opts.endpoints = {d0.endpoint(), d1.endpoint()};

    const SweepReport dist = runSweepCellsDist(cfg.name, cells, opts);
    reapDaemon(d0);
    reapDaemon(d1);
    EXPECT_EQ(dist.workersUsed, 3);
    EXPECT_EQ(sweepReportJson(dist, {}), sweepReportJson(local, {}));
    fs::remove_all(root);
}

/**
 * THE acceptance oracle: a grid sharded across 3 localhost runner
 * daemons — one of which SIGKILLs itself right after its first
 * checkpoint upload — with the scheduler itself stop-injected
 * mid-grid and a FRESH scheduler re-entering through the grid
 * manifest, renders byte-identical default reports to the same grid
 * run in-process with workers=1. Already-recorded rows are adopted,
 * not re-run.
 */
TEST(NetScheduler, DaemonKillPlusSchedulerRestartIsByteIdentical)
{
    if (daemonPath().empty())
        GTEST_SKIP() << "AUTOCAT_RUNNER_DAEMON not set";
    const fs::path root = scratchDir("oracle");

    const SweepConfig cfg = tinyNetSweep();
    const std::vector<SweepCell> cells = expandSweepGrid(cfg);
    ASSERT_EQ(cells.size(), 4u);
    const SweepReport local = runSweepCells(
        cfg.name, cells, 1, {}, (root / "local_ckpt").string(), 1);

    DaemonProc d0 = spawnDaemon(root, "d0");
    DaemonProc d1 =
        spawnDaemon(root, "d1", {"--chaos-kill-after", "1"});
    DaemonProc d2 = spawnDaemon(root, "d2");

    DistSweepOptions opts;
    opts.processes = 0; // daemons only
    opts.workDir = (root / "work").string();
    opts.checkpointDir = (root / "ckpt").string();
    opts.checkpointEvery = 1;
    opts.manifestDir = (root / "manifest").string();
    opts.endpoints = {d0.endpoint(), d1.endpoint(), d2.endpoint()};
    opts.maxRetries = 1;

    // Run 1: the scheduler "dies" (stop injection) after two cells
    // land; daemon d1 SIGKILLed itself mid-cell along the way.
    DistSweepOptions first = opts;
    first.stopAfterCells = 2;
    bool stopped = false;
    try {
        runSweepCellsDist(cfg.name, cells, first);
    } catch (const DistStopInjected &e) {
        stopped = true;
        EXPECT_EQ(e.cellsDone, 2u);
    }
    ASSERT_TRUE(stopped);

    // Snapshot what the manifest recorded: those rows must be adopted
    // by the re-entered run, never recomputed.
    std::vector<std::pair<std::string, fs::file_time_type>> recorded;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::string p =
            opts.manifestDir + "/row_" + std::to_string(i) + ".blob";
        if (fs::exists(p))
            recorded.emplace_back(p, fs::last_write_time(p));
    }
    EXPECT_EQ(recorded.size(), 2u);

    // Run 2: a FRESH scheduler process (new call, same manifest dir)
    // re-enters and finishes the grid on the surviving daemons.
    const SweepReport dist = runSweepCellsDist(cfg.name, cells, opts);
    reapDaemon(d0);
    reapDaemon(d1);
    reapDaemon(d2);

    EXPECT_EQ(dist.cellsAdopted, recorded.size());
    for (const auto &[path, mtime] : recorded) {
        EXPECT_EQ(fs::last_write_time(path), mtime)
            << path << " was rewritten by the re-entered run";
    }
    ASSERT_EQ(dist.cells.size(), local.cells.size());
    for (const SweepCellResult &cell : dist.cells)
        EXPECT_TRUE(cell.completed) << cell.error;
    EXPECT_EQ(sweepReportJson(dist, {}), sweepReportJson(local, {}));
    fs::remove_all(root);
}

// ------------------------------------------------------------ gateway

TEST(Gateway, MultiTenantCampaignsShareOneFleetByteIdentically)
{
    if (runnerPath().empty())
        GTEST_SKIP() << "AUTOCAT_CELL_RUNNER not set";
    const fs::path root = scratchDir("gateway");

    // Two tenants, different (sub)grids, one fleet. Bob's campaign
    // outranks Alice's, so it schedules first.
    SweepConfig alice = tinyNetSweep();
    alice.name = "alice-nightly";
    alice.gatewayTenant = "alice";
    alice.gatewayPriority = 0;
    alice.grid.scenarios = {"guessing_game"};

    SweepConfig bob = tinyNetSweep();
    bob.name = "bob-quick";
    bob.gatewayTenant = "bob";
    bob.gatewayPriority = 5;
    bob.grid.policies = {ReplPolicy::Lru};

    const SweepReport alice_solo = runSweepCells(
        alice.name, expandSweepGrid(alice), 1, {});
    const SweepReport bob_solo =
        runSweepCells(bob.name, expandSweepGrid(bob), 1, {});

    FleetOptions fleet;
    fleet.localProcesses = 2;
    fleet.runnerPath = runnerPath();

    CampaignGateway gateway((root / "gw").string(), fleet);
    gateway.submit(alice);
    gateway.submit(bob);
    // Same (tenant, campaign) pair: refused, not silently duplicated.
    EXPECT_THROW(gateway.submit(bob), std::invalid_argument);
    // A tenant name that is not a path-safe token is refused.
    SweepConfig evil = tinyNetSweep();
    evil.gatewayTenant = "../escape";
    EXPECT_THROW(gateway.submit(evil), std::invalid_argument);

    const std::vector<GatewayResult> results = gateway.run();
    ASSERT_EQ(results.size(), 2u);
    // Priority order: bob first.
    EXPECT_EQ(results[0].tenant, "bob");
    EXPECT_EQ(results[1].tenant, "alice");

    // Per-tenant trees, reports on disk, and — the contract — each
    // campaign's bytes identical to running it alone with workers=1.
    EXPECT_EQ(results[0].reportJson, sweepReportJson(bob_solo, {}));
    EXPECT_EQ(results[1].reportJson, sweepReportJson(alice_solo, {}));
    EXPECT_EQ(readWholeFile(results[0].reportPath, "report"),
              results[0].reportJson);
    EXPECT_TRUE(fs::is_directory(root / "gw" / "alice" /
                                 "alice-nightly" / "manifest"));
    EXPECT_TRUE(fs::is_directory(root / "gw" / "bob" / "bob-quick" /
                                 "work"));
    fs::remove_all(root);
}

} // namespace
} // namespace autocat
