/**
 * @file
 * Tests for the key = value experiment-config parser.
 */

#include <gtest/gtest.h>

#include "core/campaign_config.hpp"
#include "core/config_parser.hpp"
#include "util/rng.hpp"

namespace autocat {
namespace {

TEST(ConfigParser, ParsesFullTableIIKnobSet)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(R"(
        # cache
        num_sets = 4
        num_ways = 2
        rep_policy = rrip
        prefetcher = nextline
        random_set_mapping = true
        address_space = 32
        # attacker / victim
        attack_addr_s = 4
        attack_addr_e = 11
        victim_addr_s = 0
        victim_addr_e = 3
        flush_enable = true
        victim_no_access_enable = false
        detection_enable = true
        pl_cache_lock_victim = true
        # episode / rewards
        window_size = 24
        multi_secret = true
        multi_secret_episode_steps = 80
        reveal_on_guess = true
        random_init = false
        correct_guess_reward = 2.0
        wrong_guess_reward = -3.0
        step_reward = -0.02
        length_violation_reward = -5
        detection_reward = -4
        seed = 99
        # rl
        ppo_seed = 123
        steps_per_epoch = 1234
        learning_rate = 0.001
        gamma = 0.9
        hidden = 64
        max_epochs = 55
        target_accuracy = 0.9
        eval_episodes = 77
        verbose = true
    )"));

    EXPECT_EQ(cfg.env.cache.numSets, 4u);
    EXPECT_EQ(cfg.env.cache.numWays, 2u);
    EXPECT_EQ(cfg.env.cache.policy, ReplPolicy::Rrip);
    EXPECT_EQ(cfg.env.cache.prefetcher, PrefetcherKind::NextLine);
    EXPECT_TRUE(cfg.env.cache.randomSetMapping);
    EXPECT_EQ(cfg.env.cache.addressSpaceSize, 32u);
    EXPECT_EQ(cfg.env.attackAddrS, 4u);
    EXPECT_EQ(cfg.env.attackAddrE, 11u);
    EXPECT_EQ(cfg.env.victimAddrE, 3u);
    EXPECT_TRUE(cfg.env.flushEnable);
    EXPECT_FALSE(cfg.env.victimNoAccessEnable);
    EXPECT_TRUE(cfg.env.detectionEnable);
    EXPECT_TRUE(cfg.env.plCacheLockVictim);
    EXPECT_EQ(cfg.env.windowSize, 24u);
    EXPECT_TRUE(cfg.env.multiSecret);
    EXPECT_EQ(cfg.env.multiSecretEpisodeSteps, 80u);
    EXPECT_TRUE(cfg.env.revealOnGuess);
    EXPECT_FALSE(cfg.env.randomInit);
    EXPECT_DOUBLE_EQ(cfg.env.correctGuessReward, 2.0);
    EXPECT_DOUBLE_EQ(cfg.env.wrongGuessReward, -3.0);
    EXPECT_DOUBLE_EQ(cfg.env.stepReward, -0.02);
    EXPECT_DOUBLE_EQ(cfg.env.lengthViolationReward, -5.0);
    EXPECT_DOUBLE_EQ(cfg.env.detectionReward, -4.0);
    EXPECT_EQ(cfg.env.seed, 99u);
    EXPECT_EQ(cfg.ppo.seed, 123u);
    EXPECT_EQ(cfg.ppo.stepsPerEpoch, 1234);
    EXPECT_DOUBLE_EQ(cfg.ppo.lr, 0.001);
    EXPECT_DOUBLE_EQ(cfg.ppo.gamma, 0.9);
    EXPECT_EQ(cfg.ppo.hidden, 64u);
    EXPECT_EQ(cfg.maxEpochs, 55);
    EXPECT_DOUBLE_EQ(cfg.targetAccuracy, 0.9);
    EXPECT_EQ(cfg.evalEpisodes, 77);
    EXPECT_TRUE(cfg.verbose);
}

TEST(ConfigParser, DefaultsWhenEmpty)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(""));
    const ExplorationConfig fresh;
    EXPECT_EQ(cfg.env.cache.numWays, fresh.env.cache.numWays);
    EXPECT_EQ(cfg.maxEpochs, fresh.maxEpochs);
}

TEST(ConfigParser, BatchEnvKeyRoundTrips)
{
    const ExplorationConfig cfg =
        parseExplorationConfig(std::string("batch_env = true"));
    EXPECT_TRUE(cfg.batchEnv);
    const ExplorationConfig fresh;
    EXPECT_FALSE(fresh.batchEnv);
    const std::string rendered = renderExplorationConfig(cfg);
    EXPECT_NE(rendered.find("batch_env = true"), std::string::npos);
    EXPECT_TRUE(parseExplorationConfig(rendered).batchEnv);
}

TEST(ConfigParser, UnknownKeyFailsLoudly)
{
    EXPECT_THROW(parseExplorationConfig(std::string("num_waysss = 4")),
                 std::invalid_argument);
}

TEST(ConfigParser, MissingEqualsFails)
{
    EXPECT_THROW(parseExplorationConfig(std::string("num_ways 4")),
                 std::invalid_argument);
}

TEST(ConfigParser, BadBooleanFails)
{
    EXPECT_THROW(
        parseExplorationConfig(std::string("flush_enable = maybe")),
        std::invalid_argument);
}

TEST(ConfigParser, NumericValuesAreStrict)
{
    // Trailing garbage, negatives, and out-of-range values must fail
    // loudly, not silently truncate or wrap.
    EXPECT_THROW(parseExplorationConfig(std::string("num_ways = 8abc")),
                 std::invalid_argument);
    EXPECT_THROW(parseExplorationConfig(std::string("num_ways = -1")),
                 std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(std::string("hierarchy.num_cores = 0z")),
        std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(
            std::string("seed = 123456789012345678901234567890")),
        std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(std::string("learning_rate = 0.x")),
        std::invalid_argument);
    // Narrowed fields reject values that would wrap int/unsigned.
    EXPECT_THROW(
        parseExplorationConfig(
            std::string("steps_per_epoch = 3000000000")),
        std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(std::string("num_ways = 4294967298")),
        std::invalid_argument);
    EXPECT_THROW(parseExplorationConfig(std::string("step_reward =")),
                 std::invalid_argument);
    // Non-finite doubles parse via stod but are never sane knobs.
    EXPECT_THROW(parseExplorationConfig(std::string("gamma = nan")),
                 std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(std::string("learning_rate = inf")),
        std::invalid_argument);
    // Scientific notation and signed doubles stay accepted.
    const ExplorationConfig ok = parseExplorationConfig(
        std::string("learning_rate = 1e-3\nstep_reward = -0.02"));
    EXPECT_DOUBLE_EQ(ok.ppo.lr, 1e-3);
    EXPECT_DOUBLE_EQ(ok.env.stepReward, -0.02);
}

TEST(ConfigParser, CommentsAndBlankLinesIgnored)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(
        "\n   # a comment\nnum_ways = 8  # trailing comment\n\n"));
    EXPECT_EQ(cfg.env.cache.numWays, 8u);
}

TEST(ConfigParser, AddressSpaceAutoWidens)
{
    const ExplorationConfig cfg = parseExplorationConfig(
        std::string("attack_addr_e = 100\naddress_space = 8"));
    EXPECT_GE(cfg.env.cache.addressSpaceSize, 102u);
}

TEST(ConfigParser, RenderRoundTrips)
{
    ExplorationConfig original;
    original.env.cache.numWays = 8;
    original.env.cache.policy = ReplPolicy::TreePlru;
    original.env.flushEnable = true;
    original.env.stepReward = -0.005;
    original.maxEpochs = 42;

    const std::string text = renderExplorationConfig(original);
    const ExplorationConfig parsed = parseExplorationConfig(text);
    EXPECT_EQ(parsed.env.cache.numWays, 8u);
    EXPECT_EQ(parsed.env.cache.policy, ReplPolicy::TreePlru);
    EXPECT_TRUE(parsed.env.flushEnable);
    EXPECT_DOUBLE_EQ(parsed.env.stepReward, -0.005);
    EXPECT_EQ(parsed.maxEpochs, 42);
}

TEST(ConfigParser, LoadMissingFileThrows)
{
    EXPECT_THROW(loadExplorationConfig("/nonexistent/path.cfg"),
                 std::runtime_error);
}

TEST(ConfigParser, ParsesHierarchyLevels)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(R"(
        scenario = guessing_game
        hierarchy.num_cores = 2
        hierarchy.levels[0].num_sets = 4
        hierarchy.levels[0].num_ways = 1
        hierarchy.levels[0].rep_policy = lru
        hierarchy.levels[0].shared = false
        hierarchy.levels[1].num_sets = 4
        hierarchy.levels[1].num_ways = 2
        hierarchy.levels[1].rep_policy = rrip
        hierarchy.levels[1].inclusion = exclusive
        hierarchy.levels[1].address_space = 48
        hierarchy.levels[1].shared = true
    )"));

    const HierarchyConfig &h = cfg.env.hierarchy;
    ASSERT_EQ(h.depth(), 2u);
    EXPECT_EQ(h.numCores, 2u);
    EXPECT_EQ(h.levels[0].cache.numSets, 4u);
    EXPECT_EQ(h.levels[0].cache.numWays, 1u);
    EXPECT_FALSE(h.levels[0].shared);
    EXPECT_EQ(h.levels[1].cache.numWays, 2u);
    EXPECT_EQ(h.levels[1].cache.policy, ReplPolicy::Rrip);
    EXPECT_EQ(h.levels[1].inclusion, InclusionPolicy::Exclusive);
    EXPECT_EQ(h.levels[1].cache.addressSpaceSize, 48u);
    EXPECT_TRUE(h.levels[1].shared);
}

TEST(ConfigParser, HierarchyLevelsGrowOnDemandInAnyOrder)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(
        "hierarchy.levels[2].num_ways = 8\n"
        "hierarchy.levels[0].num_ways = 1\n"));
    ASSERT_EQ(cfg.env.hierarchy.depth(), 3u);
    EXPECT_EQ(cfg.env.hierarchy.levels[0].cache.numWays, 1u);
    EXPECT_EQ(cfg.env.hierarchy.levels[2].cache.numWays, 8u);
}

TEST(ConfigParser, HierarchyAddressSpaceAutoWidens)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(
        "attack_addr_e = 100\nhierarchy.levels[0].address_space = 8\n"));
    EXPECT_GE(cfg.env.hierarchy.levels[0].cache.addressSpaceSize, 102u);
}

TEST(ConfigParser, BadHierarchyKeysFailLoudly)
{
    EXPECT_THROW(parseExplorationConfig(
                     std::string("hierarchy.levels[0].bogus = 1")),
                 std::invalid_argument);
    EXPECT_THROW(parseExplorationConfig(
                     std::string("hierarchy.levels[99].num_ways = 1")),
                 std::invalid_argument);
    // Trailing garbage in the level index must not parse as the prefix.
    EXPECT_THROW(parseExplorationConfig(
                     std::string("hierarchy.levels[0z].num_ways = 1")),
                 std::invalid_argument);
    EXPECT_THROW(parseExplorationConfig(
                     std::string("hierarchy.levels[].num_ways = 1")),
                 std::invalid_argument);
    EXPECT_THROW(parseExplorationConfig(
                     std::string("hierarchy.bogus = 1")),
                 std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(std::string(
            "hierarchy.levels[0].inclusion = sometimes")),
        std::invalid_argument);
}

TEST(ConfigParser, RenderRoundTripsHierarchy)
{
    ExplorationConfig original;
    original.env.hierarchy.numCores = 2;
    CacheConfig l1;
    l1.numSets = 4;
    l1.numWays = 1;
    l1.randomSetMapping = true;
    l1.seed = 77;
    CacheConfig l2;
    l2.numSets = 4;
    l2.numWays = 2;
    l2.policy = ReplPolicy::TreePlru;
    l2.prefetcher = PrefetcherKind::Stream;
    original.env.hierarchy =
        HierarchyConfig::twoLevel(l1, l2, InclusionPolicy::Exclusive);

    const std::string text = renderExplorationConfig(original);
    const ExplorationConfig parsed = parseExplorationConfig(text);
    ASSERT_EQ(parsed.env.hierarchy.depth(), 2u);
    EXPECT_FALSE(parsed.env.hierarchy.levels[0].shared);
    EXPECT_TRUE(parsed.env.hierarchy.levels[0].cache.randomSetMapping);
    EXPECT_EQ(parsed.env.hierarchy.levels[0].cache.seed, 77u);
    EXPECT_EQ(parsed.env.hierarchy.levels[1].cache.policy,
              ReplPolicy::TreePlru);
    EXPECT_EQ(parsed.env.hierarchy.levels[1].cache.prefetcher,
              PrefetcherKind::Stream);
    EXPECT_EQ(parsed.env.hierarchy.levels[1].inclusion,
              InclusionPolicy::Exclusive);
    EXPECT_TRUE(parsed.env.hierarchy.levels[1].shared);
}

TEST(ConfigParser, ParsesTlbAndChannelKeys)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(R"(
        scenario = tlb_evict
        tlb.num_sets = 4
        tlb.num_ways = 3
        tlb.rep_policy = plru
        tlb.walk_levels = 3
        tlb.level_bits = 4
        tlb.pwc_sets = 2
        tlb.pwc_ways = 8
        tlb.address_space = 128
        tlb.seed = 9
        channel.prefetch_burst_len = 5
        channel.prefetch_burst_base = 2
    )"));

    const TlbConfig &t = cfg.env.channel.tlb;
    EXPECT_EQ(t.numSets, 4u);
    EXPECT_EQ(t.numWays, 3u);
    EXPECT_EQ(t.policy, ReplPolicy::TreePlru);
    EXPECT_EQ(t.walkLevels, 3u);
    EXPECT_EQ(t.levelBits, 4u);
    EXPECT_EQ(t.pwcSets, 2u);
    EXPECT_EQ(t.pwcWays, 8u);
    EXPECT_EQ(t.addressSpaceSize, 128u);
    EXPECT_EQ(t.seed, 9u);
    EXPECT_EQ(cfg.env.channel.prefetchBurstLen, 5u);
    EXPECT_EQ(cfg.env.channel.prefetchBurstBase, 2u);
}

TEST(ConfigParser, TlbAddressSpaceAutoWidens)
{
    // The same guarantee the cache address space gets: the configured
    // attack/victim ranges always fit the TLB's page space.
    const ExplorationConfig cfg = parseExplorationConfig(
        std::string("attack_addr_e = 100\ntlb.address_space = 8"));
    EXPECT_GE(cfg.env.channel.tlb.addressSpaceSize, 102u);
}

TEST(ConfigParser, BadTlbAndChannelKeysFailLoudly)
{
    EXPECT_THROW(parseExplorationConfig(std::string("tlb.bogus = 1")),
                 std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(std::string("channel.bogus = 1")),
        std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(std::string("tlb.num_sets = -1")),
        std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(std::string("tlb.rep_policy = fifo")),
        std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(
            std::string("channel.prefetch_burst_len = 3x")),
        std::invalid_argument);
    // Errors carry the offending line number.
    try {
        parseExplorationConfig(std::string("\n\ntlb.bogus = 1\n"));
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(ConfigParser, RenderRoundTripsTlbAndChannel)
{
    ExplorationConfig original;
    original.env.channel.tlb.numSets = 8;
    original.env.channel.tlb.numWays = 4;
    original.env.channel.tlb.policy = ReplPolicy::Rrip;
    original.env.channel.tlb.walkLevels = 4;
    original.env.channel.tlb.levelBits = 9;
    original.env.channel.tlb.pwcSets = 2;
    original.env.channel.tlb.pwcWays = 4;
    original.env.channel.tlb.addressSpaceSize = 256;
    original.env.channel.tlb.seed = 31;
    original.env.channel.prefetchBurstLen = 6;
    original.env.channel.prefetchBurstBase = 3;

    const std::string text = renderExplorationConfig(original);
    const ExplorationConfig parsed = parseExplorationConfig(text);
    EXPECT_EQ(parsed.env.channel.tlb.numSets, 8u);
    EXPECT_EQ(parsed.env.channel.tlb.numWays, 4u);
    EXPECT_EQ(parsed.env.channel.tlb.policy, ReplPolicy::Rrip);
    EXPECT_EQ(parsed.env.channel.tlb.walkLevels, 4u);
    EXPECT_EQ(parsed.env.channel.tlb.levelBits, 9u);
    EXPECT_EQ(parsed.env.channel.tlb.pwcSets, 2u);
    EXPECT_EQ(parsed.env.channel.tlb.pwcWays, 4u);
    EXPECT_EQ(parsed.env.channel.tlb.addressSpaceSize, 256u);
    EXPECT_EQ(parsed.env.channel.tlb.seed, 31u);
    EXPECT_EQ(parsed.env.channel.prefetchBurstLen, 6u);
    EXPECT_EQ(parsed.env.channel.prefetchBurstBase, 3u);
}

TEST(ConfigParser, RenderRejectsUnrepresentableScenarioNames)
{
    ExplorationConfig cfg;
    cfg.scenario = "foo #1";
    EXPECT_THROW(renderExplorationConfig(cfg), std::invalid_argument);
    cfg.scenario = "foo ";
    EXPECT_THROW(renderExplorationConfig(cfg), std::invalid_argument);
}

TEST(ConfigParser, ExtensionHookReceivesUnknownKeys)
{
    std::vector<std::pair<std::string, std::string>> seen;
    const ExplorationConfig cfg = parseExplorationConfig(
        std::string("num_ways = 8\ncustom.alpha = 3\ncustom.beta = x\n"),
        [&](const std::string &key, const std::string &value) {
            if (key.compare(0, 7, "custom.") != 0)
                return false;
            seen.emplace_back(key, value);
            return true;
        });
    EXPECT_EQ(cfg.env.cache.numWays, 8u);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].first, "custom.alpha");
    EXPECT_EQ(seen[1].second, "x");

    // A hook that declines the key keeps the fail-loudly contract, and
    // a hook that throws gets the line number appended.
    EXPECT_THROW(
        parseExplorationConfig(
            std::string("other.key = 1"),
            [](const std::string &, const std::string &) { return false; }),
        std::invalid_argument);
    try {
        parseExplorationConfig(
            std::string("\ncustom.bad = 1"),
            [](const std::string &, const std::string &) -> bool {
                throw std::invalid_argument("config: bad custom key");
            });
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

/** Randomized config covering every rendered knob family. */
ExplorationConfig
randomConfig(Rng &rng)
{
    const ReplPolicy policies[] = {ReplPolicy::Lru, ReplPolicy::TreePlru,
                                   ReplPolicy::Rrip, ReplPolicy::Random};
    const PrefetcherKind prefetchers[] = {PrefetcherKind::None,
                                          PrefetcherKind::NextLine,
                                          PrefetcherKind::Stream};
    const InclusionPolicy inclusions[] = {InclusionPolicy::Inclusive,
                                          InclusionPolicy::Exclusive,
                                          InclusionPolicy::Nine};

    ExplorationConfig cfg;
    cfg.env.cache.numSets = 1u << rng.uniformInt(4);
    cfg.env.cache.numWays = 1u << rng.uniformInt(4);
    cfg.env.cache.policy = policies[rng.uniformInt(4)];
    cfg.env.cache.prefetcher = prefetchers[rng.uniformInt(3)];
    cfg.env.cache.randomSetMapping = rng.bernoulli(0.5);
    cfg.env.cache.addressSpaceSize = 16 + rng.uniformInt(64);
    cfg.env.attackAddrS = rng.uniformInt(4);
    cfg.env.attackAddrE = cfg.env.attackAddrS + rng.uniformInt(8);
    cfg.env.victimAddrE = rng.uniformInt(4);
    cfg.env.flushEnable = rng.bernoulli(0.5);
    cfg.env.victimNoAccessEnable = rng.bernoulli(0.5);
    cfg.env.detectionEnable = rng.bernoulli(0.5);
    cfg.env.windowSize = rng.uniformInt(64);
    cfg.env.episodeLengthLimit = rng.uniformInt(64);
    cfg.env.multiSecret = rng.bernoulli(0.5);
    cfg.env.multiSecretEpisodeSteps = 1 + rng.uniformInt(200);
    cfg.env.randomInit = rng.bernoulli(0.5);
    cfg.env.initAccesses = rng.uniformInt(16);
    cfg.env.stepReward = -0.001 * static_cast<double>(rng.uniformInt(50));
    cfg.env.seed = rng.uniformInt(1000);
    // Channel knobs (tlb.* / channel.*) are rendered unconditionally,
    // so every fuzz round exercises their round trip. The TLB address
    // space floor mirrors the cache's: large enough that the parse
    // epilogue's auto-widen never fires (widening would break the
    // fixed point by design, tested separately).
    cfg.env.channel.tlb.numSets = 1u << rng.uniformInt(3);
    cfg.env.channel.tlb.numWays = 1u << rng.uniformInt(3);
    cfg.env.channel.tlb.policy = policies[rng.uniformInt(4)];
    cfg.env.channel.tlb.walkLevels = 1 + rng.uniformInt(4);
    cfg.env.channel.tlb.levelBits = 1 + rng.uniformInt(8);
    cfg.env.channel.tlb.pwcSets = 1 + rng.uniformInt(4);
    cfg.env.channel.tlb.pwcWays = 1 + rng.uniformInt(4);
    cfg.env.channel.tlb.addressSpaceSize = 16 + rng.uniformInt(64);
    cfg.env.channel.tlb.seed = rng.uniformInt(100);
    cfg.env.channel.prefetchBurstLen = 1 + rng.uniformInt(8);
    cfg.env.channel.prefetchBurstBase = rng.uniformInt(8);
    cfg.ppo.seed = rng.uniformInt(1000);
    cfg.ppo.stepsPerEpoch = 100 + static_cast<int>(rng.uniformInt(5000));
    cfg.ppo.hidden = 16u << rng.uniformInt(4);
    cfg.ppo.entropyCoef = 0.001 * static_cast<double>(rng.uniformInt(100));
    cfg.maxEpochs = 1 + static_cast<int>(rng.uniformInt(300));
    cfg.evalEpisodes = 1 + static_cast<int>(rng.uniformInt(200));
    cfg.verbose = rng.bernoulli(0.5);
    cfg.numStreams = 1 + static_cast<int>(rng.uniformInt(8));
    cfg.threadedEnvs = rng.bernoulli(0.5);
    cfg.batchEnv = rng.bernoulli(0.5);
    cfg.ppo.doubleBuffered = rng.bernoulli(0.5);

    if (rng.bernoulli(0.6)) {
        const unsigned depth = 1 + static_cast<unsigned>(rng.uniformInt(3));
        cfg.env.hierarchy.numCores = 2;
        for (unsigned k = 0; k < depth; ++k) {
            HierarchyLevelConfig lvl;
            lvl.cache.numSets = 1u << rng.uniformInt(3);
            lvl.cache.numWays = 1u << rng.uniformInt(3);
            lvl.cache.policy = policies[rng.uniformInt(4)];
            lvl.cache.addressSpaceSize = 16 + rng.uniformInt(64);
            lvl.cache.seed = rng.uniformInt(100);
            lvl.inclusion = inclusions[rng.uniformInt(3)];
            lvl.shared = rng.bernoulli(0.5);
            cfg.env.hierarchy.levels.push_back(lvl);
        }
    }
    return cfg;
}

TEST(ConfigParserFuzz, RenderParseRenderIsAFixedPointOnRandomConfigs)
{
    Rng rng(0xc0ffee);
    for (int round = 0; round < 50; ++round) {
        const ExplorationConfig cfg = randomConfig(rng);
        const std::string once = renderExplorationConfig(cfg);
        ExplorationConfig reparsed;
        ASSERT_NO_THROW(reparsed = parseExplorationConfig(once))
            << "round " << round << "\n" << once;
        const std::string twice = renderExplorationConfig(reparsed);
        ASSERT_EQ(once, twice) << "round " << round;
    }
}

/** Random campaign layered on a random base: every campaign.* /
 *  phase[N].* knob family is exercised. */
CampaignConfig
randomCampaignConfig(Rng &rng)
{
    CampaignConfig cfg;
    cfg.base = randomConfig(rng);
    if (rng.bernoulli(0.5))
        cfg.checkpointPath =
            "ckpt_" + std::to_string(rng.uniformInt(100)) + ".bin";
    cfg.checkpointEvery = static_cast<int>(rng.uniformInt(10));
    cfg.resume = rng.bernoulli(0.5);

    const char *kinds[] = {"miss", "cchunter", "cyclone"};
    const std::size_t num_phases = 1 + rng.uniformInt(3);
    for (std::size_t k = 0; k < num_phases; ++k) {
        CurriculumPhase phase;
        if (rng.bernoulli(0.5))
            phase.name = "p" + std::to_string(k);
        if (rng.bernoulli(0.3))
            phase.scenario = "guessing_game";
        phase.maxEpochs = 1 + static_cast<int>(rng.uniformInt(100));
        if (rng.bernoulli(0.5))
            phase.targetAccuracy =
                0.01 * static_cast<double>(rng.uniformInt(100));
        if (rng.bernoulli(0.5))
            phase.maxDetectionRate =
                0.01 * static_cast<double>(rng.uniformInt(100));
        if (rng.bernoulli(0.5)) {
            DetectorSpec d;
            d.kind = kinds[rng.uniformInt(3)];
            d.mode = rng.bernoulli(0.5) ? DetectorMode::Terminate
                                        : DetectorMode::Penalize;
            d.penalty = -0.1 * static_cast<double>(rng.uniformInt(50));
            d.missThreshold = 1 + static_cast<unsigned>(rng.uniformInt(4));
            d.cycloneInterval =
                8 + static_cast<unsigned>(rng.uniformInt(32));
            phase.detectors.push_back(d);
        }
        if (rng.bernoulli(0.4))
            phase.detectionEnable = rng.bernoulli(0.5);
        if (rng.bernoulli(0.4))
            phase.multiSecret = rng.bernoulli(0.5);
        if (rng.bernoulli(0.4))
            phase.multiSecretEpisodeSteps =
                1 + static_cast<unsigned>(rng.uniformInt(200));
        if (rng.bernoulli(0.4))
            phase.rewards.stepReward =
                -0.001 * static_cast<double>(rng.uniformInt(50));
        if (rng.bernoulli(0.4))
            phase.rewards.correctGuessReward =
                0.5 * static_cast<double>(rng.uniformInt(6));
        if (rng.bernoulli(0.4))
            phase.rewards.detectionReward =
                -0.5 * static_cast<double>(rng.uniformInt(6));
        if (rng.bernoulli(0.3))
            phase.rewards.wrongGuessReward =
                -0.5 * static_cast<double>(rng.uniformInt(6));
        if (rng.bernoulli(0.3))
            phase.rewards.lengthViolationReward =
                -0.5 * static_cast<double>(rng.uniformInt(6));
        if (rng.bernoulli(0.3))
            phase.rewards.noGuessReward =
                -0.5 * static_cast<double>(rng.uniformInt(6));
        cfg.phases.push_back(std::move(phase));
    }
    return cfg;
}

TEST(ConfigParserFuzz, CampaignRenderParseRenderIsAFixedPoint)
{
    Rng rng(0xbada11ce);
    for (int round = 0; round < 50; ++round) {
        const CampaignConfig cfg = randomCampaignConfig(rng);
        const std::string once = renderCampaignConfig(cfg);
        CampaignConfig reparsed;
        ASSERT_NO_THROW(reparsed = parseCampaignConfig(once))
            << "round " << round << "\n" << once;
        const std::string twice = renderCampaignConfig(reparsed);
        ASSERT_EQ(once, twice) << "round " << round;
    }
}

TEST(ConfigParserFuzz, CorruptedCampaignKeysNeverParseSilently)
{
    Rng rng(0xdecade);
    const std::string rendered =
        renderCampaignConfig(randomCampaignConfig(rng));
    std::vector<std::string> lines;
    std::istringstream iss(rendered);
    std::string line;
    while (std::getline(iss, line))
        lines.push_back(line);

    for (int round = 0; round < 50; ++round) {
        std::vector<std::string> mutated = lines;
        std::string &victim = mutated[rng.uniformInt(mutated.size())];
        const auto eq = victim.find('=');
        ASSERT_NE(eq, std::string::npos);
        const std::size_t pos = rng.uniformInt(eq);
        victim.insert(pos, 1, 'z');

        std::string text;
        for (const std::string &l : mutated)
            text += l + "\n";
        EXPECT_THROW(parseCampaignConfig(text), std::exception)
            << "round " << round << ": '" << victim << "'";
    }
}

TEST(ConfigParserFuzz, RandomlyCorruptedKeysNeverParseSilently)
{
    // Mutating any key name must produce an error, not a silently
    // defaulted config: every line of the rendered format is
    // load-bearing.
    Rng rng(0xfacade);
    const std::string rendered =
        renderExplorationConfig(randomConfig(rng));
    std::vector<std::string> lines;
    std::istringstream iss(rendered);
    std::string line;
    while (std::getline(iss, line))
        lines.push_back(line);

    for (int round = 0; round < 50; ++round) {
        std::vector<std::string> mutated = lines;
        std::string &victim = mutated[rng.uniformInt(mutated.size())];
        const auto eq = victim.find('=');
        ASSERT_NE(eq, std::string::npos);
        // Corrupt the key portion (insert a character).
        const std::size_t pos = rng.uniformInt(eq);
        victim.insert(pos, 1, 'z');

        std::string text;
        for (const std::string &l : mutated)
            text += l + "\n";
        EXPECT_THROW(parseExplorationConfig(text), std::exception)
            << "round " << round << ": '" << victim << "'";
    }
}

} // namespace
} // namespace autocat
