/**
 * @file
 * Tests for the key = value experiment-config parser.
 */

#include <gtest/gtest.h>

#include "core/config_parser.hpp"

namespace autocat {
namespace {

TEST(ConfigParser, ParsesFullTableIIKnobSet)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(R"(
        # cache
        num_sets = 4
        num_ways = 2
        rep_policy = rrip
        prefetcher = nextline
        random_set_mapping = true
        address_space = 32
        # attacker / victim
        attack_addr_s = 4
        attack_addr_e = 11
        victim_addr_s = 0
        victim_addr_e = 3
        flush_enable = true
        victim_no_access_enable = false
        detection_enable = true
        pl_cache_lock_victim = true
        # episode / rewards
        window_size = 24
        multi_secret = true
        multi_secret_episode_steps = 80
        reveal_on_guess = true
        random_init = false
        correct_guess_reward = 2.0
        wrong_guess_reward = -3.0
        step_reward = -0.02
        length_violation_reward = -5
        detection_reward = -4
        seed = 99
        # rl
        ppo_seed = 123
        steps_per_epoch = 1234
        learning_rate = 0.001
        gamma = 0.9
        hidden = 64
        max_epochs = 55
        target_accuracy = 0.9
        eval_episodes = 77
        verbose = true
    )"));

    EXPECT_EQ(cfg.env.cache.numSets, 4u);
    EXPECT_EQ(cfg.env.cache.numWays, 2u);
    EXPECT_EQ(cfg.env.cache.policy, ReplPolicy::Rrip);
    EXPECT_EQ(cfg.env.cache.prefetcher, PrefetcherKind::NextLine);
    EXPECT_TRUE(cfg.env.cache.randomSetMapping);
    EXPECT_EQ(cfg.env.cache.addressSpaceSize, 32u);
    EXPECT_EQ(cfg.env.attackAddrS, 4u);
    EXPECT_EQ(cfg.env.attackAddrE, 11u);
    EXPECT_EQ(cfg.env.victimAddrE, 3u);
    EXPECT_TRUE(cfg.env.flushEnable);
    EXPECT_FALSE(cfg.env.victimNoAccessEnable);
    EXPECT_TRUE(cfg.env.detectionEnable);
    EXPECT_TRUE(cfg.env.plCacheLockVictim);
    EXPECT_EQ(cfg.env.windowSize, 24u);
    EXPECT_TRUE(cfg.env.multiSecret);
    EXPECT_EQ(cfg.env.multiSecretEpisodeSteps, 80u);
    EXPECT_TRUE(cfg.env.revealOnGuess);
    EXPECT_FALSE(cfg.env.randomInit);
    EXPECT_DOUBLE_EQ(cfg.env.correctGuessReward, 2.0);
    EXPECT_DOUBLE_EQ(cfg.env.wrongGuessReward, -3.0);
    EXPECT_DOUBLE_EQ(cfg.env.stepReward, -0.02);
    EXPECT_DOUBLE_EQ(cfg.env.lengthViolationReward, -5.0);
    EXPECT_DOUBLE_EQ(cfg.env.detectionReward, -4.0);
    EXPECT_EQ(cfg.env.seed, 99u);
    EXPECT_EQ(cfg.ppo.seed, 123u);
    EXPECT_EQ(cfg.ppo.stepsPerEpoch, 1234);
    EXPECT_DOUBLE_EQ(cfg.ppo.lr, 0.001);
    EXPECT_DOUBLE_EQ(cfg.ppo.gamma, 0.9);
    EXPECT_EQ(cfg.ppo.hidden, 64u);
    EXPECT_EQ(cfg.maxEpochs, 55);
    EXPECT_DOUBLE_EQ(cfg.targetAccuracy, 0.9);
    EXPECT_EQ(cfg.evalEpisodes, 77);
    EXPECT_TRUE(cfg.verbose);
}

TEST(ConfigParser, DefaultsWhenEmpty)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(""));
    const ExplorationConfig fresh;
    EXPECT_EQ(cfg.env.cache.numWays, fresh.env.cache.numWays);
    EXPECT_EQ(cfg.maxEpochs, fresh.maxEpochs);
}

TEST(ConfigParser, UnknownKeyFailsLoudly)
{
    EXPECT_THROW(parseExplorationConfig(std::string("num_waysss = 4")),
                 std::invalid_argument);
}

TEST(ConfigParser, MissingEqualsFails)
{
    EXPECT_THROW(parseExplorationConfig(std::string("num_ways 4")),
                 std::invalid_argument);
}

TEST(ConfigParser, BadBooleanFails)
{
    EXPECT_THROW(
        parseExplorationConfig(std::string("flush_enable = maybe")),
        std::invalid_argument);
}

TEST(ConfigParser, CommentsAndBlankLinesIgnored)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(
        "\n   # a comment\nnum_ways = 8  # trailing comment\n\n"));
    EXPECT_EQ(cfg.env.cache.numWays, 8u);
}

TEST(ConfigParser, AddressSpaceAutoWidens)
{
    const ExplorationConfig cfg = parseExplorationConfig(
        std::string("attack_addr_e = 100\naddress_space = 8"));
    EXPECT_GE(cfg.env.cache.addressSpaceSize, 102u);
}

TEST(ConfigParser, RenderRoundTrips)
{
    ExplorationConfig original;
    original.env.cache.numWays = 8;
    original.env.cache.policy = ReplPolicy::TreePlru;
    original.env.flushEnable = true;
    original.env.stepReward = -0.005;
    original.maxEpochs = 42;

    const std::string text = renderExplorationConfig(original);
    const ExplorationConfig parsed = parseExplorationConfig(text);
    EXPECT_EQ(parsed.env.cache.numWays, 8u);
    EXPECT_EQ(parsed.env.cache.policy, ReplPolicy::TreePlru);
    EXPECT_TRUE(parsed.env.flushEnable);
    EXPECT_DOUBLE_EQ(parsed.env.stepReward, -0.005);
    EXPECT_EQ(parsed.maxEpochs, 42);
}

TEST(ConfigParser, LoadMissingFileThrows)
{
    EXPECT_THROW(loadExplorationConfig("/nonexistent/path.cfg"),
                 std::runtime_error);
}

TEST(ConfigParser, ParsesHierarchyLevels)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(R"(
        scenario = guessing_game
        hierarchy.num_cores = 2
        hierarchy.levels[0].num_sets = 4
        hierarchy.levels[0].num_ways = 1
        hierarchy.levels[0].rep_policy = lru
        hierarchy.levels[0].shared = false
        hierarchy.levels[1].num_sets = 4
        hierarchy.levels[1].num_ways = 2
        hierarchy.levels[1].rep_policy = rrip
        hierarchy.levels[1].inclusion = exclusive
        hierarchy.levels[1].address_space = 48
        hierarchy.levels[1].shared = true
    )"));

    const HierarchyConfig &h = cfg.env.hierarchy;
    ASSERT_EQ(h.depth(), 2u);
    EXPECT_EQ(h.numCores, 2u);
    EXPECT_EQ(h.levels[0].cache.numSets, 4u);
    EXPECT_EQ(h.levels[0].cache.numWays, 1u);
    EXPECT_FALSE(h.levels[0].shared);
    EXPECT_EQ(h.levels[1].cache.numWays, 2u);
    EXPECT_EQ(h.levels[1].cache.policy, ReplPolicy::Rrip);
    EXPECT_EQ(h.levels[1].inclusion, InclusionPolicy::Exclusive);
    EXPECT_EQ(h.levels[1].cache.addressSpaceSize, 48u);
    EXPECT_TRUE(h.levels[1].shared);
}

TEST(ConfigParser, HierarchyLevelsGrowOnDemandInAnyOrder)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(
        "hierarchy.levels[2].num_ways = 8\n"
        "hierarchy.levels[0].num_ways = 1\n"));
    ASSERT_EQ(cfg.env.hierarchy.depth(), 3u);
    EXPECT_EQ(cfg.env.hierarchy.levels[0].cache.numWays, 1u);
    EXPECT_EQ(cfg.env.hierarchy.levels[2].cache.numWays, 8u);
}

TEST(ConfigParser, HierarchyAddressSpaceAutoWidens)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(
        "attack_addr_e = 100\nhierarchy.levels[0].address_space = 8\n"));
    EXPECT_GE(cfg.env.hierarchy.levels[0].cache.addressSpaceSize, 102u);
}

TEST(ConfigParser, BadHierarchyKeysFailLoudly)
{
    EXPECT_THROW(parseExplorationConfig(
                     std::string("hierarchy.levels[0].bogus = 1")),
                 std::invalid_argument);
    EXPECT_THROW(parseExplorationConfig(
                     std::string("hierarchy.levels[99].num_ways = 1")),
                 std::invalid_argument);
    EXPECT_THROW(parseExplorationConfig(
                     std::string("hierarchy.bogus = 1")),
                 std::invalid_argument);
    EXPECT_THROW(
        parseExplorationConfig(std::string(
            "hierarchy.levels[0].inclusion = sometimes")),
        std::invalid_argument);
}

TEST(ConfigParser, RenderRoundTripsHierarchy)
{
    ExplorationConfig original;
    original.env.hierarchy.numCores = 2;
    CacheConfig l1;
    l1.numSets = 4;
    l1.numWays = 1;
    l1.randomSetMapping = true;
    l1.seed = 77;
    CacheConfig l2;
    l2.numSets = 4;
    l2.numWays = 2;
    l2.policy = ReplPolicy::TreePlru;
    l2.prefetcher = PrefetcherKind::Stream;
    original.env.hierarchy =
        HierarchyConfig::twoLevel(l1, l2, InclusionPolicy::Exclusive);

    const std::string text = renderExplorationConfig(original);
    const ExplorationConfig parsed = parseExplorationConfig(text);
    ASSERT_EQ(parsed.env.hierarchy.depth(), 2u);
    EXPECT_FALSE(parsed.env.hierarchy.levels[0].shared);
    EXPECT_TRUE(parsed.env.hierarchy.levels[0].cache.randomSetMapping);
    EXPECT_EQ(parsed.env.hierarchy.levels[0].cache.seed, 77u);
    EXPECT_EQ(parsed.env.hierarchy.levels[1].cache.policy,
              ReplPolicy::TreePlru);
    EXPECT_EQ(parsed.env.hierarchy.levels[1].cache.prefetcher,
              PrefetcherKind::Stream);
    EXPECT_EQ(parsed.env.hierarchy.levels[1].inclusion,
              InclusionPolicy::Exclusive);
    EXPECT_TRUE(parsed.env.hierarchy.levels[1].shared);
}

} // namespace
} // namespace autocat
