/**
 * @file
 * Tests for the key = value experiment-config parser.
 */

#include <gtest/gtest.h>

#include "core/config_parser.hpp"

namespace autocat {
namespace {

TEST(ConfigParser, ParsesFullTableIIKnobSet)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(R"(
        # cache
        num_sets = 4
        num_ways = 2
        rep_policy = rrip
        prefetcher = nextline
        random_set_mapping = true
        address_space = 32
        # attacker / victim
        attack_addr_s = 4
        attack_addr_e = 11
        victim_addr_s = 0
        victim_addr_e = 3
        flush_enable = true
        victim_no_access_enable = false
        detection_enable = true
        pl_cache_lock_victim = true
        # episode / rewards
        window_size = 24
        multi_secret = true
        multi_secret_episode_steps = 80
        reveal_on_guess = true
        random_init = false
        correct_guess_reward = 2.0
        wrong_guess_reward = -3.0
        step_reward = -0.02
        length_violation_reward = -5
        detection_reward = -4
        seed = 99
        # rl
        ppo_seed = 123
        steps_per_epoch = 1234
        learning_rate = 0.001
        gamma = 0.9
        hidden = 64
        max_epochs = 55
        target_accuracy = 0.9
        eval_episodes = 77
        verbose = true
    )"));

    EXPECT_EQ(cfg.env.cache.numSets, 4u);
    EXPECT_EQ(cfg.env.cache.numWays, 2u);
    EXPECT_EQ(cfg.env.cache.policy, ReplPolicy::Rrip);
    EXPECT_EQ(cfg.env.cache.prefetcher, PrefetcherKind::NextLine);
    EXPECT_TRUE(cfg.env.cache.randomSetMapping);
    EXPECT_EQ(cfg.env.cache.addressSpaceSize, 32u);
    EXPECT_EQ(cfg.env.attackAddrS, 4u);
    EXPECT_EQ(cfg.env.attackAddrE, 11u);
    EXPECT_EQ(cfg.env.victimAddrE, 3u);
    EXPECT_TRUE(cfg.env.flushEnable);
    EXPECT_FALSE(cfg.env.victimNoAccessEnable);
    EXPECT_TRUE(cfg.env.detectionEnable);
    EXPECT_TRUE(cfg.env.plCacheLockVictim);
    EXPECT_EQ(cfg.env.windowSize, 24u);
    EXPECT_TRUE(cfg.env.multiSecret);
    EXPECT_EQ(cfg.env.multiSecretEpisodeSteps, 80u);
    EXPECT_TRUE(cfg.env.revealOnGuess);
    EXPECT_FALSE(cfg.env.randomInit);
    EXPECT_DOUBLE_EQ(cfg.env.correctGuessReward, 2.0);
    EXPECT_DOUBLE_EQ(cfg.env.wrongGuessReward, -3.0);
    EXPECT_DOUBLE_EQ(cfg.env.stepReward, -0.02);
    EXPECT_DOUBLE_EQ(cfg.env.lengthViolationReward, -5.0);
    EXPECT_DOUBLE_EQ(cfg.env.detectionReward, -4.0);
    EXPECT_EQ(cfg.env.seed, 99u);
    EXPECT_EQ(cfg.ppo.seed, 123u);
    EXPECT_EQ(cfg.ppo.stepsPerEpoch, 1234);
    EXPECT_DOUBLE_EQ(cfg.ppo.lr, 0.001);
    EXPECT_DOUBLE_EQ(cfg.ppo.gamma, 0.9);
    EXPECT_EQ(cfg.ppo.hidden, 64u);
    EXPECT_EQ(cfg.maxEpochs, 55);
    EXPECT_DOUBLE_EQ(cfg.targetAccuracy, 0.9);
    EXPECT_EQ(cfg.evalEpisodes, 77);
    EXPECT_TRUE(cfg.verbose);
}

TEST(ConfigParser, DefaultsWhenEmpty)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(""));
    const ExplorationConfig fresh;
    EXPECT_EQ(cfg.env.cache.numWays, fresh.env.cache.numWays);
    EXPECT_EQ(cfg.maxEpochs, fresh.maxEpochs);
}

TEST(ConfigParser, UnknownKeyFailsLoudly)
{
    EXPECT_THROW(parseExplorationConfig(std::string("num_waysss = 4")),
                 std::invalid_argument);
}

TEST(ConfigParser, MissingEqualsFails)
{
    EXPECT_THROW(parseExplorationConfig(std::string("num_ways 4")),
                 std::invalid_argument);
}

TEST(ConfigParser, BadBooleanFails)
{
    EXPECT_THROW(
        parseExplorationConfig(std::string("flush_enable = maybe")),
        std::invalid_argument);
}

TEST(ConfigParser, CommentsAndBlankLinesIgnored)
{
    const ExplorationConfig cfg = parseExplorationConfig(std::string(
        "\n   # a comment\nnum_ways = 8  # trailing comment\n\n"));
    EXPECT_EQ(cfg.env.cache.numWays, 8u);
}

TEST(ConfigParser, AddressSpaceAutoWidens)
{
    const ExplorationConfig cfg = parseExplorationConfig(
        std::string("attack_addr_e = 100\naddress_space = 8"));
    EXPECT_GE(cfg.env.cache.addressSpaceSize, 102u);
}

TEST(ConfigParser, RenderRoundTrips)
{
    ExplorationConfig original;
    original.env.cache.numWays = 8;
    original.env.cache.policy = ReplPolicy::TreePlru;
    original.env.flushEnable = true;
    original.env.stepReward = -0.005;
    original.maxEpochs = 42;

    const std::string text = renderExplorationConfig(original);
    const ExplorationConfig parsed = parseExplorationConfig(text);
    EXPECT_EQ(parsed.env.cache.numWays, 8u);
    EXPECT_EQ(parsed.env.cache.policy, ReplPolicy::TreePlru);
    EXPECT_TRUE(parsed.env.flushEnable);
    EXPECT_DOUBLE_EQ(parsed.env.stepReward, -0.005);
    EXPECT_EQ(parsed.maxEpochs, 42);
}

TEST(ConfigParser, LoadMissingFileThrows)
{
    EXPECT_THROW(loadExplorationConfig("/nonexistent/path.cfg"),
                 std::runtime_error);
}

} // namespace
} // namespace autocat
