/**
 * @file
 * Unit tests for the util substrate: RNG, statistics, bit helpers,
 * and table rendering.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace autocat {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(77);
    const auto x0 = a.next();
    a.next();
    a.reseed(77);
    EXPECT_EQ(a.next(), x0);
}

TEST(Rng, UniformIntInBounds)
{
    Rng rng(9);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.uniformInt(7), 7u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(10);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng rng(12);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniformDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(14);
    RunningStat st;
    for (int i = 0; i < 20000; ++i)
        st.push(rng.gaussian(2.0, 3.0));
    EXPECT_NEAR(st.mean(), 2.0, 0.1);
    EXPECT_NEAR(st.stddev(), 3.0, 0.1);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(15);
    std::vector<int> v{1, 2, 3, 4, 5, 6};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, WeightedIndexPrefersHeavyWeight)
{
    Rng rng(16);
    int heavy = 0;
    for (int i = 0; i < 5000; ++i) {
        if (rng.weightedIndex({0.1, 0.8, 0.1}) == 1)
            ++heavy;
    }
    EXPECT_GT(heavy, 3500);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(99);
    Rng child = a.split();
    EXPECT_NE(a.next(), child.next());
}

// ------------------------------------------------------------- stats --

TEST(RunningStat, BasicMoments)
{
    RunningStat st;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        st.push(x);
    EXPECT_EQ(st.count(), 8u);
    EXPECT_DOUBLE_EQ(st.mean(), 5.0);
    EXPECT_NEAR(st.stddev(), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(st.min(), 2.0);
    EXPECT_DOUBLE_EQ(st.max(), 9.0);
    EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat st;
    EXPECT_EQ(st.count(), 0u);
    EXPECT_EQ(st.mean(), 0.0);
    EXPECT_EQ(st.variance(), 0.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat st;
    st.push(1.0);
    st.reset();
    EXPECT_EQ(st.count(), 0u);
}

TEST(Stats, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(stddev({1.0, 2.0, 3.0}), 1.0, 1e-12);
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, Median)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_EQ(median({}), 0.0);
}

TEST(Autocorrelation, PerfectlyPeriodicTrainHasHighPeak)
{
    // Alternating 1,0,1,0,... has |C_2| near 1 at even lags.
    std::vector<double> xs;
    for (int i = 0; i < 60; ++i)
        xs.push_back(i % 2 == 0 ? 1.0 : 0.0);
    EXPECT_GT(autocorrelation(xs, 2), 0.9);
    EXPECT_LT(autocorrelation(xs, 1), -0.9);
    EXPECT_GT(maxAutocorrelation(xs, 10), 0.9);
}

TEST(Autocorrelation, ConstantTrainIsZero)
{
    std::vector<double> xs(50, 1.0);
    EXPECT_EQ(autocorrelation(xs, 1), 0.0);
    EXPECT_EQ(maxAutocorrelation(xs, 10), 0.0);
}

TEST(Autocorrelation, RandomTrainHasLowPeak)
{
    Rng rng(7);
    std::vector<double> xs;
    for (int i = 0; i < 400; ++i)
        xs.push_back(static_cast<double>(rng.uniformInt(2)));
    EXPECT_LT(maxAutocorrelation(xs, 20), 0.3);
}

TEST(Autocorrelation, InvalidLagReturnsZero)
{
    std::vector<double> xs{1.0, 0.0, 1.0};
    EXPECT_EQ(autocorrelation(xs, 0), 0.0);
    EXPECT_EQ(autocorrelation(xs, 3), 0.0);
    EXPECT_EQ(autocorrelation(xs, 99), 0.0);
}

TEST(Autocorrelation, CorrelogramLength)
{
    std::vector<double> xs(30, 0.0);
    xs[3] = 1.0;
    EXPECT_EQ(autocorrelogram(xs, 10).size(), 10u);
    EXPECT_EQ(autocorrelogram(xs, 100).size(), 29u);
}

// -------------------------------------------------------------- bits --

TEST(Bits, RandomBitsAreBinaryAndSized)
{
    Rng rng(21);
    const BitString b = randomBits(rng, 512);
    ASSERT_EQ(b.size(), 512u);
    for (auto v : b)
        EXPECT_LE(v, 1);
}

TEST(Bits, HammingDistance)
{
    EXPECT_EQ(hammingDistance({1, 0, 1}, {1, 1, 1}), 1u);
    EXPECT_EQ(hammingDistance({1, 0}, {1, 0, 1}), 1u);  // zero padded
    EXPECT_EQ(hammingDistance({}, {}), 0u);
}

TEST(Bits, BitErrorRate)
{
    EXPECT_DOUBLE_EQ(bitErrorRate({1, 1, 1, 1}, {1, 1, 0, 0}), 0.5);
    EXPECT_DOUBLE_EQ(bitErrorRate({}, {}), 0.0);
}

class PackRoundtrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PackRoundtrip, PackUnpackIsIdentity)
{
    const unsigned bps = GetParam();
    Rng rng(31 + bps);
    BitString msg = randomBits(rng, 96);  // multiple of 1..4
    const auto symbols = packSymbols(msg, bps);
    BitString back = unpackSymbols(symbols, bps);
    back.resize(msg.size());
    EXPECT_EQ(back, msg);
    for (unsigned s : symbols)
        EXPECT_LT(s, 1u << bps);
}

INSTANTIATE_TEST_SUITE_P(BitsPerSymbol, PackRoundtrip,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Bits, PackPadsTail)
{
    const auto symbols = packSymbols({1, 1, 1}, 2);
    ASSERT_EQ(symbols.size(), 2u);
    EXPECT_EQ(symbols[0], 3u);
    EXPECT_EQ(symbols[1], 2u);  // trailing 1 padded with 0
}

TEST(Bits, ToStringRendering)
{
    EXPECT_EQ(toString({1, 0, 1, 1}), "1011");
}

// ------------------------------------------------------------- table --

TEST(TextTable, RendersHeadersAndRows)
{
    TextTable t("Demo", {"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("Demo"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, CsvEscapesCommasAndQuotes)
{
    TextTable t("T", {"x"});
    t.addRow({"a,b"});
    t.addRow({"say \"hi\""});
    std::ostringstream oss;
    t.printCsv(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("\"a,b\""), std::string::npos);
    EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(42L), "42");
}

} // namespace
} // namespace autocat
