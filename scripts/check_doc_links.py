#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown docs.

Scans README.md and docs/*.md for inline markdown links, resolves
relative targets (path plus optional #anchor) against the linking
file, and exits non-zero listing any target that does not exist.
External links (http/https/mailto) are ignored; anchors are checked
against the target file's headings.

Usage: scripts/check_doc_links.py [repo_root]
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, strip punctuation."""
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def check_file(md: Path, root: Path) -> list:
    errors = []
    text = md.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if not path_part:  # same-file anchor
            dest = md
        else:
            dest = (md.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{md.relative_to(root)}: broken link -> {target}")
                continue
        if anchor and dest.suffix == ".md":
            headings = {anchor_of(h) for h in HEADING_RE.findall(
                dest.read_text(encoding="utf-8"))}
            if anchor not in headings:
                errors.append(
                    f"{md.relative_to(root)}: missing anchor -> {target}")
    return errors


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    errors = []
    checked = 0
    for md in files:
        if not md.exists():
            continue
        checked += 1
        errors.extend(check_file(md, root))
    for e in errors:
        print(f"ERROR: {e}")
    print(f"checked {checked} file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
